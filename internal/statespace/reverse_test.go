package statespace

import (
	"math/rand"
	"testing"
)

// randomCSR builds a deterministic pseudo-random forward CSR with the
// given state count and expected out-degree (self-loops included on
// purpose: ReverseCSR must drop them).
func randomCSR(states, degree int, seed int64) (off []int64, succ []int32) {
	rng := rand.New(rand.NewSource(seed))
	off = make([]int64, states+1)
	for s := 0; s < states; s++ {
		off[s] = int64(len(succ))
		d := rng.Intn(2 * degree)
		for k := 0; k < d; k++ {
			succ = append(succ, int32(rng.Intn(states)))
		}
	}
	off[states] = int64(len(succ))
	return off, succ
}

// naiveReverse is the obvious per-row-slice construction the counting sort
// replaced.
func naiveReverse(states int, off []int64, succ []int32) [][]int32 {
	rev := make([][]int32, states)
	for s := 0; s < states; s++ {
		for _, t := range succ[off[s]:off[s+1]] {
			if int(t) != s {
				rev[t] = append(rev[t], int32(s))
			}
		}
	}
	return rev
}

func TestReverseCSRMatchesNaive(t *testing.T) {
	for _, states := range []int{1, 7, 300, 5000} {
		off, succ := randomCSR(states, 4, int64(states))
		want := naiveReverse(states, off, succ)
		for _, workers := range []int{1, 4} {
			r := ReverseCSR(states, off, succ, workers)
			for s := 0; s < states; s++ {
				got := r.Preds(int32(s))
				if len(got) != len(want[s]) {
					t.Fatalf("states=%d workers=%d: preds(%d) has %d entries, want %d",
						states, workers, s, len(got), len(want[s]))
				}
				for i := range got {
					if got[i] != want[s][i] {
						t.Fatalf("states=%d workers=%d: preds(%d)[%d] = %d, want %d",
							states, workers, s, i, got[i], want[s][i])
					}
				}
			}
		}
	}
}

// TestReverseCSRParallelForced drops the serial-path shortcut threshold by
// using an edge count above serialReverseLimit, so the counting-sort
// worker path runs even on small machines.
func TestReverseCSRParallelForced(t *testing.T) {
	states := 20000
	off, succ := randomCSR(states, 4, 42)
	if int64(len(succ)) < serialReverseLimit {
		t.Fatalf("test graph too small to force the parallel path: %d edges", len(succ))
	}
	serial := ReverseCSR(states, off, succ, 1)
	parallel := ReverseCSR(states, off, succ, 8)
	if len(serial.Src) != len(parallel.Src) {
		t.Fatalf("edge counts differ: %d vs %d", len(serial.Src), len(parallel.Src))
	}
	for i := range serial.Src {
		if serial.Src[i] != parallel.Src[i] {
			t.Fatalf("Src[%d] = %d (serial) vs %d (parallel)", i, serial.Src[i], parallel.Src[i])
		}
	}
	for i := range serial.Off {
		if serial.Off[i] != parallel.Off[i] {
			t.Fatalf("Off[%d] = %d (serial) vs %d (parallel)", i, serial.Off[i], parallel.Off[i])
		}
	}
}

// naiveBackwardDist is a reference BFS over the naive reverse adjacency.
func naiveBackwardDist(states int, off []int64, succ []int32, seed, skipPred []bool) []int32 {
	rev := naiveReverse(states, off, succ)
	dist := make([]int32, states)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int32
	for s := 0; s < states; s++ {
		if seed[s] {
			dist[s] = 0
			frontier = append(frontier, int32(s))
		}
	}
	for len(frontier) > 0 {
		var next []int32
		for _, s := range frontier {
			for _, pre := range rev[s] {
				if skipPred != nil && skipPred[pre] {
					continue
				}
				if dist[pre] == -1 {
					dist[pre] = dist[s] + 1
					next = append(next, pre)
				}
			}
		}
		frontier = next
	}
	return dist
}

func TestBackwardBFSMatchesNaive(t *testing.T) {
	for _, states := range []int{1, 9, 400, 20000} {
		off, succ := randomCSR(states, 3, int64(states)+1)
		rng := rand.New(rand.NewSource(int64(states) + 2))
		seed := make([]bool, states)
		skip := make([]bool, states)
		for s := 0; s < states; s++ {
			seed[s] = rng.Intn(3) == 0 // large seed set => large frontiers
			skip[s] = rng.Intn(5) == 0
		}
		if states == 1 {
			seed[0] = true
		}
		r := ReverseCSR(states, off, succ, 2)
		for _, skipPred := range [][]bool{nil, skip} {
			want := naiveBackwardDist(states, off, succ, seed, skipPred)
			for _, workers := range []int{1, 4} {
				got := r.BackwardBFS(seed, skipPred, workers)
				for s := range got {
					if got[s] != want[s] {
						t.Fatalf("states=%d workers=%d skip=%v: dist[%d] = %d, want %d",
							states, workers, skipPred != nil, s, got[s], want[s])
					}
				}
			}
		}
	}
}
