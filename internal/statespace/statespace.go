// Package statespace builds the explored transition system of an algorithm
// under a scheduler policy exactly once, as a compact weighted CSR
// (compressed-sparse-row) graph shared by every downstream analysis: the
// exhaustive checker consumes the unweighted successor view, the exact
// Markov analysis consumes the probability-weighted view of the same
// built-once space.
//
// Exploration is embarrassingly parallel: configurations are identified
// with dense mixed-radix indexes (protocol.Encoder), so index ranges are
// explored independently by a worker pool and stitched deterministically.
// Successor indexes are computed by delta re-encoding (changing process p
// from state a to b moves the index by (b-a)*Weight(p)), so no successor
// configuration is ever materialized; activation subsets are enumerated as
// bitmasks (scheduler.PolicyMasks), so no per-configuration subset slices
// are allocated. The result is identical — including per-row probability
// sums, which accumulate in the same order — to the reference
// single-threaded enumeration in BuildReference.
package statespace

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"weakstab/internal/obs"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// DefaultMaxStates caps the configuration space when Options.MaxStates is
// zero. It matches the historical checker default so that capped analyses
// fail on the same instances they always failed on.
const DefaultMaxStates = 1 << 21

// IndexLimit is the largest configuration space the engine can represent
// at all: state indexes are int32. Analyses that no longer have a
// solver-imposed ceiling (the sparse hitting-time solver scales past 10^6
// transient states) pass this as MaxStates to explore everything the
// index width allows.
const IndexLimit = math.MaxInt32

// Options tunes Build.
type Options struct {
	// MaxStates caps the configuration space (0 means DefaultMaxStates).
	MaxStates int64
	// Workers sets the exploration worker-pool size (0 means
	// runtime.NumCPU()). The result is identical for every worker count.
	Workers int
	// Obs receives exploration metrics and progress events (nil falls back
	// to obs.Default(); both nil disables instrumentation). Observability
	// never changes the built space: events and counters are side channels
	// only.
	Obs *obs.Observer
}

// StateCap resolves the MaxStates option to its effective value, shared by
// every exploration path (Build, BuildFrom, the checker's fault-ball
// enumeration): 0 means DefaultMaxStates, and values beyond the int32
// state-id range clamp to IndexLimit. The cap is inclusive on discovered
// states: a region of exactly StateCap(m) states builds, and discovering
// one more fails.
func StateCap(maxStates int64) int64 {
	if maxStates <= 0 {
		return DefaultMaxStates
	}
	if maxStates > IndexLimit {
		return IndexLimit
	}
	return maxStates
}

// resolveWorkers resolves a worker-pool option: 0 means runtime.NumCPU(),
// and the pool never exceeds limit (the number of parallel work items).
func resolveWorkers(workers, limit int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > limit {
		workers = limit
	}
	return workers
}

// Space is the explored transition system: states are configuration
// indexes under Enc, and the successors of s — deduplicated, sorted
// ascending, with the transition probabilities of the policy's randomized
// scheduler (Definition 6: uniform over the policy's activation subsets)
// — are the CSR row Succ(s)/Prob(s). States with no enabled process have
// empty rows (terminal; the Markov view treats them as absorbing).
type Space struct {
	Alg    protocol.Algorithm
	Pol    scheduler.Policy
	Enc    *protocol.Encoder
	States int
	Legit  []bool // Legit[s]: configuration s is legitimate
	// Workers is the resolved exploration worker-pool size, reused as the
	// default pool size of the analyses run over this space.
	Workers int

	off  []int64   // row offsets, len States+1
	succ []int32   // successor state indexes, sorted per row
	prob []float64 // transition probabilities aligned with succ

	// mapped is non-nil when the CSR arrays alias an external mapped
	// buffer (MapSpace); see mapped.go for the Close/Acquire lifecycle.
	mapped *mapping

	revOnce sync.Once
	rev     Reverse
}

// Succ returns the deduplicated successor state indexes of s, sorted
// ascending. The slice aliases the space; callers must not modify it.
func (sp *Space) Succ(s int) []int32 { return sp.succ[sp.off[s]:sp.off[s+1]] }

// Prob returns the transition probabilities aligned with Succ(s) under the
// policy's randomized scheduler. Rows of non-terminal states sum to 1. The
// slice aliases the space; callers must not modify it.
func (sp *Space) Prob(s int) []float64 { return sp.prob[sp.off[s]:sp.off[s+1]] }

// Degree returns the number of distinct successors of s.
func (sp *Space) Degree(s int) int { return int(sp.off[s+1] - sp.off[s]) }

// IsTerminal reports whether state s has no successors (no enabled
// process).
func (sp *Space) IsTerminal(s int) bool { return sp.off[s] == sp.off[s+1] }

// Edges returns the total number of stored transitions.
func (sp *Space) Edges() int64 { return int64(len(sp.succ)) }

// CSR exposes the raw forward CSR triple (row offsets, successors,
// transition probabilities) so analysis layers can alias the explored
// space without copying. Callers must not modify the slices.
func (sp *Space) CSR() (off []int64, succ []int32, prob []float64) {
	return sp.off, sp.succ, sp.prob
}

// Reverse returns the predecessor view of the space, built on first use
// and cached, so the checker's reachability passes and the Markov analyses
// of the same space share one reverse CSR.
func (sp *Space) Reverse() Reverse {
	sp.revOnce.Do(func() {
		sp.rev = ReverseCSR(sp.States, sp.off, sp.succ, sp.Workers)
	})
	return sp.rev
}

// Config decodes state index s into a fresh configuration.
func (sp *Space) Config(s int) protocol.Configuration {
	return sp.Enc.Decode(int64(s), nil)
}

// edge is one pre-merge transition of the row under construction. Targets
// are global configuration indexes (int64) so the same explorer serves both
// the full-range engine (whose spaces fit int32 state indexes) and the
// frontier engine (whose subspaces may live inside index ranges far beyond
// int32 — only *discovered* states need dense local ids there).
type edge struct {
	to int64
	p  float64
}

// edgeSlice sorts edges by target, stably, so per-target probability sums
// accumulate in enumeration order (deterministic across worker counts).
type edgeSlice []edge

func (e edgeSlice) Len() int           { return len(e) }
func (e edgeSlice) Less(i, j int) bool { return e[i].to < e[j].to }
func (e edgeSlice) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }

// chunk is the CSR fragment of one contiguous state range.
type chunk struct {
	deg  []int32
	succ []int32
	prob []float64
}

// Build explores a's configuration space under pol with a worker pool and
// returns the shared transition system. The result is deterministic and
// independent of Options.Workers.
func Build(a protocol.Algorithm, pol scheduler.Policy, opt Options) (*Space, error) {
	return BuildContext(context.Background(), a, pol, opt)
}

// BuildContext is Build with cooperative cancellation: ctx is checked at
// chunk granularity, so a cancelled build stops claiming work and returns
// an error wrapping ctx.Err() in bounded time, producing no space. A
// successful build is unaffected by ctx.
func BuildContext(ctx context.Context, a protocol.Algorithm, pol scheduler.Policy, opt Options) (*Space, error) {
	// The cap is inclusive: a space of exactly maxStates configurations
	// builds (NewEncoder rejects only totals strictly beyond it).
	maxStates := StateCap(opt.MaxStates)
	enc, err := protocol.NewEncoder(a, maxStates)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	if enc.Total() > math.MaxInt32 {
		return nil, fmt.Errorf("statespace: %d configurations exceed the int32 index range", enc.Total())
	}
	total := int(enc.Total())
	workers := resolveWorkers(opt.Workers, total)
	sp := &Space{
		Alg:     a,
		Pol:     pol,
		Enc:     enc,
		States:  total,
		Legit:   make([]bool, total),
		Workers: workers,
	}
	// Small chunks keep workers balanced (states differ wildly in enabled
	// count); capped chunk count bounds stitching overhead.
	chunkSize := 1 << 12
	if c := total / (workers * 8); c > chunkSize {
		chunkSize = c
	}
	numChunks := (total + chunkSize - 1) / chunkSize
	chunks := make([]chunk, numChunks)

	var (
		pool    = sync.Pool{New: func() any { return newExplorer(a, pol, enc) }}
		failMu  sync.Mutex
		failErr error
	)
	// Instrumentation side channel: cumulative done/edge counts feed the
	// registry and a coarse build.progress event at milestone crossings
	// (chunk arrival order is scheduling-dependent, so the milestone —
	// not the event order — is the contract). The built space is
	// untouched.
	o := obs.Or(opt.Obs)
	var doneStates, doneEdges atomic.Int64
	const progressEvery = 1 << 20
	ForRanges(total, workers, chunkSize, func(lo, hi int) bool {
		if err := ctx.Err(); err != nil {
			failMu.Lock()
			if failErr == nil {
				failErr = fmt.Errorf("statespace: exploration canceled: %w", err)
			}
			failMu.Unlock()
			return false
		}
		ex := pool.Get().(*explorer)
		ck, err := ex.exploreRange(lo, hi, sp.Legit)
		pool.Put(ex)
		if err != nil {
			failMu.Lock()
			if failErr == nil {
				failErr = err
			}
			failMu.Unlock()
			return false
		}
		chunks[lo/chunkSize] = ck
		if o.On() {
			e := doneEdges.Add(int64(len(ck.succ)))
			d := doneStates.Add(int64(hi - lo))
			if d/progressEvery != (d-int64(hi-lo))/progressEvery || d == int64(total) {
				o.Emit("build.progress", obs.BuildProgress{Done: d, Total: int64(total), Edges: e})
			}
		}
		return true
	})
	if failErr != nil {
		return nil, failErr
	}

	// Stitch the fragments into one CSR, in chunk (= state) order.
	var edges int64
	for _, c := range chunks {
		edges += int64(len(c.succ))
	}
	sp.off = make([]int64, total+1)
	sp.succ = make([]int32, edges)
	sp.prob = make([]float64, edges)
	s, at := 0, int64(0)
	for _, c := range chunks {
		for _, d := range c.deg {
			sp.off[s] = at
			at += int64(d)
			s++
		}
		copy(sp.succ[at-int64(len(c.succ)):], c.succ)
		copy(sp.prob[at-int64(len(c.prob)):], c.prob)
	}
	sp.off[total] = at
	o.Counter("build.states").Add(int64(total))
	o.Counter("build.edges").Add(edges)
	return sp, nil
}

// explorer holds one worker's reusable scratch state. It is shared by the
// full-range engine (Build) and the frontier engine (BuildFrom): both feed
// it one decoded configuration at a time and read the merged successor row
// (global targets, global probabilities) from outTo/outProb after each
// exploreState call.
type explorer struct {
	alg      protocol.Algorithm
	pol      scheduler.Policy
	enc      *protocol.Encoder
	det      protocol.Deterministic // non-nil: allocation-free outcome fast path
	n        int
	counts   []int // per-process state-domain sizes, for outcome validation
	maskable bool
	masks    map[int][]uint64 // subset masks per enabled-set size

	cfg      protocol.Configuration
	enabled  []int
	actions  []int
	outDelta [][]int64 // per enabled position: index deltas of the outcomes
	outProb  [][]float64
	actPos   []int // activated positions of the current mask
	odo      []int // odometer over the activated positions' outcomes
	row      edgeSlice

	outTo []int64   // merged successor row: global target indexes, ascending
	outP  []float64 // merged transition probabilities aligned with outTo
}

func newExplorer(alg protocol.Algorithm, pol scheduler.Policy, enc *protocol.Encoder) *explorer {
	n := alg.Graph().N()
	ex := &explorer{
		alg:      alg,
		pol:      pol,
		enc:      enc,
		n:        n,
		counts:   make([]int, n),
		cfg:      make(protocol.Configuration, n),
		outDelta: make([][]int64, n),
		outProb:  make([][]float64, n),
	}
	for p := 0; p < n; p++ {
		ex.counts[p] = alg.StateCount(p)
	}
	if det, ok := alg.(protocol.Deterministic); ok {
		ex.det = det
	}
	if _, ok := pol.(scheduler.MaskPolicy); ok {
		// Mask policies depend only on the enabled-set size, so masks are
		// cacheable per size; id-dependent policies are re-queried per state.
		ex.maskable = true
		ex.masks = make(map[int][]uint64)
	}
	return ex
}

func (ex *explorer) subsetMasks() []uint64 {
	k := len(ex.enabled)
	if ex.maskable {
		if m, ok := ex.masks[k]; ok {
			return m
		}
		m := scheduler.PolicyMasks(ex.pol, ex.enabled)
		ex.masks[k] = m
		return m
	}
	return scheduler.PolicyMasks(ex.pol, ex.enabled)
}

// exploreRange explores states [lo, hi) into a fresh CSR fragment,
// recording legitimacy into legit. The range's configurations are decoded
// once at lo and then advanced by odometer increments, so the mixed-radix
// divisions of Decode are paid once per range instead of once per state.
func (ex *explorer) exploreRange(lo, hi int, legit []bool) (chunk, error) {
	ck := chunk{deg: make([]int32, hi-lo)}
	for s := lo; s < hi; s++ {
		if s == lo {
			ex.cfg = ex.enc.Decode(int64(s), ex.cfg)
		} else {
			ex.enc.DecodeNext(ex.cfg)
		}
		isLegit, err := ex.exploreState(int64(s))
		if err != nil {
			return chunk{}, err
		}
		legit[s] = isLegit
		for i, t := range ex.outTo {
			ck.succ = append(ck.succ, int32(t))
			ck.prob = append(ck.prob, ex.outP[i])
		}
		ck.deg[s-lo] = int32(len(ex.outTo))
	}
	return ck, nil
}

// exploreState computes the merged successor row of the configuration the
// caller has decoded into ex.cfg, whose global index is g, leaving global
// targets and probabilities in ex.outTo/ex.outP, and reports its
// legitimacy. Outcome states are validated against the process domains so
// a misbehaving Algorithm yields a clean error instead of an aliased state
// index.
func (ex *explorer) exploreState(g int64) (bool, error) {
	legit := ex.alg.Legitimate(ex.cfg)
	ex.outTo = ex.outTo[:0]
	ex.outP = ex.outP[:0]

	// Enabled processes and their outcome distributions, computed once per
	// state (every activation subset reuses them): outcome j of enabled
	// position i moves the state index by outDelta[i][j] with probability
	// outProb[i][j].
	ex.enabled = ex.enabled[:0]
	ex.actions = ex.actions[:0]
	for p := 0; p < ex.n; p++ {
		if act := ex.alg.EnabledAction(ex.cfg, p); act != protocol.Disabled {
			ex.enabled = append(ex.enabled, p)
			ex.actions = append(ex.actions, act)
		}
	}
	if len(ex.enabled) == 0 {
		return legit, nil // terminal: empty row, absorbing in the Markov view
	}
	deterministic := true
	for i, p := range ex.enabled {
		w := ex.enc.Weight(p)
		ex.outDelta[i] = ex.outDelta[i][:0]
		ex.outProb[i] = ex.outProb[i][:0]
		if ex.det != nil {
			next := ex.det.DeterministicExecute(ex.cfg, p, ex.actions[i])
			if next < 0 || next >= ex.counts[p] {
				return false, fmt.Errorf("statespace: %s: outcome state %d out of domain [0,%d) at p=%d in %v",
					ex.alg.Name(), next, ex.counts[p], p, ex.cfg)
			}
			ex.outDelta[i] = append(ex.outDelta[i], int64(next-ex.cfg[p])*w)
			ex.outProb[i] = append(ex.outProb[i], 1)
			continue
		}
		outs := ex.alg.Outcomes(ex.cfg, p, ex.actions[i])
		if len(outs) == 0 {
			return false, fmt.Errorf("statespace: %s: no outcomes for enabled action %s at p=%d in %v",
				ex.alg.Name(), ex.alg.ActionName(ex.actions[i]), p, ex.cfg)
		}
		for _, o := range outs {
			if o.State < 0 || o.State >= ex.counts[p] {
				return false, fmt.Errorf("statespace: %s: outcome state %d out of domain [0,%d) at p=%d in %v",
					ex.alg.Name(), o.State, ex.counts[p], p, ex.cfg)
			}
			ex.outDelta[i] = append(ex.outDelta[i], int64(o.State-ex.cfg[p])*w)
			ex.outProb[i] = append(ex.outProb[i], o.Prob)
		}
		if len(outs) > 1 {
			deterministic = false
		}
	}

	masks := ex.subsetMasks()
	w := 1 / float64(len(masks))
	ex.row = ex.row[:0]
	for _, mask := range masks {
		if deterministic {
			// Single joint outcome: sum the activated deltas directly.
			delta := int64(0)
			for mask != 0 {
				i := bits.TrailingZeros64(mask)
				mask &= mask - 1
				delta += ex.outDelta[i][0]
			}
			ex.row = append(ex.row, edge{to: g + delta, p: w})
			continue
		}
		ex.enumerateMask(g, mask, w)
	}

	// Merge duplicate targets: stable sort keeps enumeration order within a
	// target, so probability sums accumulate deterministically.
	sort.Stable(ex.row)
	for i := 0; i < len(ex.row); {
		to, p := ex.row[i].to, ex.row[i].p
		for i++; i < len(ex.row) && ex.row[i].to == to; i++ {
			p += ex.row[i].p
		}
		ex.outTo = append(ex.outTo, to)
		ex.outP = append(ex.outP, p)
	}
	return legit, nil
}

// enumerateMask appends every joint outcome of the activation subset mask
// (an odometer over the activated positions' outcome lists, last position
// varying fastest) to the row under construction.
func (ex *explorer) enumerateMask(g int64, mask uint64, w float64) {
	ex.actPos = ex.actPos[:0]
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		mask &= mask - 1
		ex.actPos = append(ex.actPos, i)
	}
	ex.odo = ex.odo[:0]
	for range ex.actPos {
		ex.odo = append(ex.odo, 0)
	}
	for {
		delta, p := int64(0), w
		for j, i := range ex.actPos {
			delta += ex.outDelta[i][ex.odo[j]]
			p *= ex.outProb[i][ex.odo[j]]
		}
		ex.row = append(ex.row, edge{to: g + delta, p: p})
		j := len(ex.actPos) - 1
		for ; j >= 0; j-- {
			ex.odo[j]++
			if ex.odo[j] < len(ex.outDelta[ex.actPos[j]]) {
				break
			}
			ex.odo[j] = 0
		}
		if j < 0 {
			return
		}
	}
}
