// Parallel CRC-32C. The mapped load path checksums the whole buffer in one
// pass before any section is trusted, and on acceptance-scale files that
// single hardware-assisted sweep is the largest cost left on the warm
// path. CRC is linear over GF(2), so the buffer splits into per-worker
// chunks whose checksums stitch together exactly — crc32Combine extends a
// prefix CRC by the length of the following chunk via the standard
// zero-operator matrix squaring (the zlib crc32_combine construction,
// with the Castagnoli polynomial) — and the stitched value is bit-equal
// to the serial crc32.Checksum, which the tests pin.

package statespace

import (
	"hash/crc32"
	"runtime"
	"sync"
)

// castagnoliReflected is the reflected form of the Castagnoli polynomial,
// the representation the combine matrices work in (crcTable's polynomial).
const castagnoliReflected = 0x82F63B78

// gf2MatrixTimes multiplies the bit-vector vec by mat over GF(2).
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i, vec = i+1, vec>>1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
	}
	return sum
}

// gf2MatrixSquare sets square to mat·mat over GF(2).
func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := range square {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// crc32Combine returns the CRC-32C of the concatenation A||B given
// crc1 = CRC(A) and crc2 = CRC(B), where B is len2 bytes: crc1 is advanced
// through len2 zero bytes by repeated squaring of the zero-byte operator,
// then xored with crc2.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [32]uint32
	odd[0] = castagnoliReflected // operator for one zero bit
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	gf2MatrixSquare(&even, &odd) // two zero bits
	gf2MatrixSquare(&odd, &even) // four zero bits
	for {
		gf2MatrixSquare(&even, &odd) // next power-of-two zero bytes
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}

// checksumParallel is crc32.Checksum(data, crcTable) computed on all CPUs:
// per-worker chunk checksums stitched with crc32Combine. Buffers too small
// to amortize the goroutines take the serial path; the result is identical
// either way.
func checksumParallel(data []byte) uint32 {
	const minChunk = 1 << 21
	workers := min(runtime.NumCPU(), len(data)/minChunk)
	if workers <= 1 {
		return crc32.Checksum(data, crcTable)
	}
	chunk := (len(data) + workers - 1) / workers
	crcs := make([]uint32, workers)
	var wg sync.WaitGroup
	for w := range workers {
		lo, hi := w*chunk, min((w+1)*chunk, len(data))
		wg.Add(1)
		go func() {
			defer wg.Done()
			crcs[w] = crc32.Checksum(data[lo:hi], crcTable)
		}()
	}
	wg.Wait()
	crc := crcs[0]
	for w := 1; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(data))
		crc = crc32Combine(crc, crcs[w], int64(hi-lo))
	}
	return crc
}
