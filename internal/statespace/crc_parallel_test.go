package statespace

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestChecksumParallelMatchesSerial pins the stitched parallel CRC-32C to
// the serial crc32.Checksum bit for bit, across the serial/parallel
// threshold and at awkward chunk boundaries.
func TestChecksumParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sizes := []int{0, 1, 7, 4096, 1<<21 - 1, 1 << 21, 1<<22 + 13, 1<<24 + 1}
	for _, n := range sizes {
		data := make([]byte, n)
		rng.Read(data)
		want := crc32.Checksum(data, crcTable)
		if got := checksumParallel(data); got != want {
			t.Fatalf("size %d: parallel CRC %#x, serial %#x", n, got, want)
		}
	}
}

// TestCRC32Combine pins the combine operator directly: CRC(A||B) from
// CRC(A), CRC(B) and len(B), at many split points.
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := make([]byte, 1<<16+3)
	rng.Read(data)
	want := crc32.Checksum(data, crcTable)
	for _, split := range []int{0, 1, 8, 1 << 10, 1<<16 - 1, len(data)} {
		a, b := data[:split], data[split:]
		got := crc32Combine(crc32.Checksum(a, crcTable), crc32.Checksum(b, crcTable), int64(len(b)))
		if len(b) == 0 {
			// Zero-length tail: combine returns the prefix CRC unchanged,
			// but crc2 of an empty B is 0, so the contract is crc1 itself.
			got = crc32.Checksum(a, crcTable)
		}
		if got != want {
			t.Fatalf("split %d: combined CRC %#x, want %#x", split, got, want)
		}
	}
}
