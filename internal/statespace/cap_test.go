package statespace

import (
	"strings"
	"testing"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

func TestStateCapResolution(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, DefaultMaxStates},
		{-5, DefaultMaxStates},
		{1, 1},
		{DefaultMaxStates + 1, DefaultMaxStates + 1},
		{IndexLimit, IndexLimit},
		{IndexLimit + 1, IndexLimit},
		{1 << 40, IndexLimit},
	}
	for _, c := range cases {
		if got := StateCap(c.in); got != c.want {
			t.Errorf("StateCap(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestBuildFromCapBoundary pins the inclusive cap semantics of the
// frontier engine at the exact boundary: a closure of S states builds
// under MaxStates = S and S+1 and fails under S-1, and a seed set of
// exactly MaxStates is admitted.
func TestBuildFromCapBoundary(t *testing.T) {
	ring, err := tokenring.New(4)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.CentralPolicy{}
	full, err := Build(ring, pol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed a single illegitimate configuration: its forward closure must
	// grow past the seed set for the discovery cap to bite.
	var seeds []int64
	for s, ok := range full.Legit {
		if !ok {
			seeds = append(seeds, int64(s))
			break
		}
	}
	ref, err := BuildFrom(ring, pol, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	S := int64(ref.NumStates())
	if S <= int64(len(seeds)) {
		t.Fatalf("closure (%d states) must outgrow the seed set (%d) for the boundary to be meaningful", S, len(seeds))
	}

	for _, cap := range []int64{S, S + 1} {
		ss, err := BuildFrom(ring, pol, seeds, Options{MaxStates: cap})
		if err != nil {
			t.Fatalf("MaxStates=%d (closure is exactly %d states): %v", cap, S, err)
		}
		if int64(ss.NumStates()) != S {
			t.Fatalf("MaxStates=%d: explored %d states, want %d", cap, ss.NumStates(), S)
		}
	}
	if _, err := BuildFrom(ring, pol, seeds, Options{MaxStates: S - 1}); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("MaxStates=%d must fail on a %d-state closure, got err=%v", S-1, S, err)
	}

	// Seed admission boundary: exactly MaxStates distinct seeds pass the
	// admission check (the closure then fails only if it must grow).
	if _, err := BuildFrom(ring, pol, ref.Globals(), Options{MaxStates: S}); err != nil {
		t.Fatalf("seed set of exactly MaxStates=%d rejected: %v", S, err)
	}
	if _, err := BuildFrom(ring, pol, ref.Globals(), Options{MaxStates: S - 1}); err == nil {
		t.Fatalf("%d seeds must exceed the %d-state cap", S, S-1)
	}
}

// TestBuildCapBoundary pins the inclusive cap of the full-range engine: a
// space of exactly MaxStates configurations builds; one fewer fails.
func TestBuildCapBoundary(t *testing.T) {
	ring, err := tokenring.New(4) // m=3 states per process: 3^4 = 81 configurations
	if err != nil {
		t.Fatal(err)
	}
	enc, err := protocol.NewEncoder(ring, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := enc.Total()
	if sp, err := Build(ring, scheduler.CentralPolicy{}, Options{MaxStates: total}); err != nil {
		t.Fatalf("MaxStates=%d on a %d-configuration space: %v", total, total, err)
	} else if int64(sp.NumStates()) != total {
		t.Fatalf("explored %d states, want %d", sp.NumStates(), total)
	}
	if _, err := Build(ring, scheduler.CentralPolicy{}, Options{MaxStates: total - 1}); err == nil {
		t.Fatalf("MaxStates=%d must fail on a %d-configuration space", total-1, total)
	}
}
