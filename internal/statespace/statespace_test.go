package statespace

import (
	"math"
	"testing"

	"weakstab/internal/algorithms/centers"
	"weakstab/internal/algorithms/coloring"
	"weakstab/internal/algorithms/dijkstra"
	"weakstab/internal/algorithms/herman"
	"weakstab/internal/algorithms/leadertree"
	"weakstab/internal/algorithms/syncpair"
	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/graph"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
	"weakstab/internal/transformer"
)

// instances returns one small instance of every algorithm in the library,
// probabilistic ones included.
func instances(t testing.TB) []protocol.Algorithm {
	t.Helper()
	ring5, err := graph.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	chain5, err := graph.Chain(5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := leadertree.New(chain5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := syncpair.New()
	if err != nil {
		t.Fatal(err)
	}
	col, err := coloring.New(ring5)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := dijkstra.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := herman.New(5)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := centers.NewFinder(chain5)
	if err != nil {
		t.Fatal(err)
	}
	el, err := centers.NewElector(chain5)
	if err != nil {
		t.Fatal(err)
	}
	return []protocol.Algorithm{
		tr, lt, sp, col, dk, hm, fin, el, transformer.New(tr),
	}
}

func policies() []scheduler.Policy {
	return []scheduler.Policy{
		scheduler.CentralPolicy{},
		scheduler.DistributedPolicy{},
		scheduler.SynchronousPolicy{},
	}
}

// TestBuildMatchesReference checks that the parallel engine reproduces the
// seed-era enumeration exactly: same legitimacy vector, same sorted
// successor rows, identical probability sums.
func TestBuildMatchesReference(t *testing.T) {
	for _, a := range instances(t) {
		for _, pol := range policies() {
			ref, err := BuildReference(a, pol, 0)
			if err != nil {
				t.Fatalf("%s/%s: reference: %v", a.Name(), pol.Name(), err)
			}
			got, err := Build(a, pol, Options{Workers: 3})
			if err != nil {
				t.Fatalf("%s/%s: build: %v", a.Name(), pol.Name(), err)
			}
			assertEqualSpaces(t, a.Name()+"/"+pol.Name(), ref, got)
		}
	}
}

// TestBuildDeterministicAcrossWorkers checks bit-identical output for 1, 2
// and 7 workers.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	a, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.DistributedPolicy{}
	base, err := Build(a, pol, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		got, err := Build(a, pol, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertEqualSpaces(t, "workers", base, got)
	}
}

func assertEqualSpaces(t *testing.T, label string, want, got *Space) {
	t.Helper()
	if got.States != want.States {
		t.Fatalf("%s: states %d, want %d", label, got.States, want.States)
	}
	if got.Edges() != want.Edges() {
		t.Fatalf("%s: edges %d, want %d", label, got.Edges(), want.Edges())
	}
	for s := 0; s < want.States; s++ {
		if got.Legit[s] != want.Legit[s] {
			t.Fatalf("%s: state %d legitimacy %v, want %v", label, s, got.Legit[s], want.Legit[s])
		}
		ws, gs := want.Succ(s), got.Succ(s)
		wp, gp := want.Prob(s), got.Prob(s)
		if len(gs) != len(ws) {
			t.Fatalf("%s: state %d has %d successors, want %d", label, s, len(gs), len(ws))
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Fatalf("%s: state %d successor %d = %d, want %d", label, s, i, gs[i], ws[i])
			}
			if gp[i] != wp[i] {
				t.Fatalf("%s: state %d prob[%d] = %g, want %g", label, s, i, gp[i], wp[i])
			}
		}
	}
}

// TestRowInvariants checks CSR well-formedness: rows sorted strictly
// ascending, probabilities positive, non-terminal rows summing to 1.
func TestRowInvariants(t *testing.T) {
	for _, a := range instances(t) {
		for _, pol := range policies() {
			sp, err := Build(a, pol, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", a.Name(), pol.Name(), err)
			}
			for s := 0; s < sp.States; s++ {
				succ, prob := sp.Succ(s), sp.Prob(s)
				if len(succ) == 0 {
					if !sp.IsTerminal(s) {
						t.Fatalf("%s/%s: state %d empty but not terminal", a.Name(), pol.Name(), s)
					}
					continue
				}
				sum := 0.0
				for i := range succ {
					if i > 0 && succ[i] <= succ[i-1] {
						t.Fatalf("%s/%s: state %d row not strictly ascending", a.Name(), pol.Name(), s)
					}
					if int(succ[i]) < 0 || int(succ[i]) >= sp.States {
						t.Fatalf("%s/%s: state %d successor %d out of range", a.Name(), pol.Name(), s, succ[i])
					}
					if prob[i] <= 0 {
						t.Fatalf("%s/%s: state %d has non-positive probability %g", a.Name(), pol.Name(), s, prob[i])
					}
					sum += prob[i]
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("%s/%s: state %d row sums to %g", a.Name(), pol.Name(), s, sum)
				}
			}
		}
	}
}

// TestTerminalAgreement checks IsTerminal against a direct protocol query.
func TestTerminalAgreement(t *testing.T) {
	a, err := tokenring.New(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Build(a, scheduler.CentralPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < sp.States; s++ {
		if sp.IsTerminal(s) != protocol.IsTerminal(a, sp.Config(s)) {
			t.Fatalf("state %d: terminal disagreement", s)
		}
	}
}

// TestMaxStatesCap checks the cap is honored with the same error shape the
// pre-engine explorers produced.
func TestMaxStatesCap(t *testing.T) {
	a, err := tokenring.New(6) // 4^6 = 4096 configurations
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(a, scheduler.CentralPolicy{}, Options{MaxStates: 100}); err == nil {
		t.Fatal("expected cap error")
	}
	if _, err := BuildReference(a, scheduler.CentralPolicy{}, 100); err == nil {
		t.Fatal("expected cap error from reference")
	}
}

// badOutcome is a misbehaving algorithm: process 0's action claims a next
// state outside its domain. The engine must reject it with a clean error
// (the seed-era markov path validated this through Chain.SetRow).
type badOutcome struct {
	protocol.Algorithm
	empty bool // return no outcomes instead of an out-of-domain one
}

func (b badOutcome) Outcomes(cfg protocol.Configuration, p, action int) []protocol.Outcome {
	if b.empty {
		return nil
	}
	return []protocol.Outcome{{State: b.Algorithm.StateCount(p), Prob: 1}}
}

// TestBuildRejectsInvalidOutcomes checks out-of-domain and empty outcome
// sets surface as errors, not panics or aliased state indexes.
func TestBuildRejectsInvalidOutcomes(t *testing.T) {
	inner, err := tokenring.New(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		alg  protocol.Algorithm
	}{
		{"out-of-domain", badOutcome{Algorithm: inner}},
		{"empty", badOutcome{Algorithm: inner, empty: true}},
	} {
		if _, err := Build(tc.alg, scheduler.CentralPolicy{}, Options{Workers: 2}); err == nil {
			t.Fatalf("%s: expected error from Build", tc.name)
		}
	}
}
