// The frontier engine: the package's second exploration mode. Where Build
// sweeps the full mixed-radix index range, BuildFrom runs a parallel
// multi-source BFS from a seed set and discovers only the states reachable
// from it — so analyses over a bounded region (the k-fault ball of the
// k-stabilization literature, the forward closure of L, a single suspect
// configuration) pay for the region's closure, not for the whole space.
// The result is a SubSpace: a weighted CSR over dense *local* indexes plus
// a local↔global mapping (a sharded dedup table when the index range is
// too large for a dense visited array).
//
// Determinism: exploration alternates a parallel expansion phase (workers
// claim fixed-grain chunks of the current BFS level and compute successor
// rows with global targets, resolving already-known targets against the
// read-only dedup table) with a serial stitch phase that assigns local ids
// to newly discovered states in chunk-and-row order. After the BFS
// terminates, local ids are canonicalized to ascending-global order, so
// the SubSpace — rows, probabilities, legitimacy, and every analysis run
// over it — is a pure function of (algorithm, policy, seed set),
// independent of worker count and discovery schedule. Because BFS closes
// the successor relation before the space is sealed, downstream
// condensations (Tarjan over the transient subgraph, the hitting-time
// block solver) see exactly the closed reachable edge set.
package statespace

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// SubSpace is a frontier-explored transition system: exactly the states
// reachable from the seed set, indexed by dense local ids in ascending
// order of their global (mixed-radix) indexes. It implements
// TransitionSystem, so every analysis that runs over a Space runs over a
// SubSpace unchanged — on local indexes.
type SubSpace struct {
	Alg protocol.Algorithm
	Pol scheduler.Policy
	Enc *protocol.Encoder
	// States is the number of discovered states.
	States int
	// Legit[s]: local state s is legitimate.
	Legit []bool
	// Workers is the resolved exploration worker-pool size, reused as the
	// default pool size of the analyses run over this subspace.
	Workers int

	table *Dedup // global -> local, aliases globalIdx through Globals()

	off  []int64   // row offsets, len States+1
	succ []int32   // successor local indexes, sorted ascending per row
	prob []float64 // transition probabilities aligned with succ

	// mapped is non-nil when the CSR and Globals arrays alias an external
	// mapped buffer (MapSubSpace); see mapped.go for the lifecycle.
	mapped *mapping

	revOnce sync.Once
	rev     Reverse
}

// Succ returns the deduplicated successor local indexes of s, sorted
// ascending. The slice aliases the subspace; callers must not modify it.
func (ss *SubSpace) Succ(s int) []int32 { return ss.succ[ss.off[s]:ss.off[s+1]] }

// Prob returns the transition probabilities aligned with Succ(s). The
// slice aliases the subspace; callers must not modify it.
func (ss *SubSpace) Prob(s int) []float64 { return ss.prob[ss.off[s]:ss.off[s+1]] }

// Degree returns the number of distinct successors of s.
func (ss *SubSpace) Degree(s int) int { return int(ss.off[s+1] - ss.off[s]) }

// IsTerminal reports whether local state s has no successors.
func (ss *SubSpace) IsTerminal(s int) bool { return ss.off[s] == ss.off[s+1] }

// Edges returns the total number of stored transitions.
func (ss *SubSpace) Edges() int64 { return int64(len(ss.succ)) }

// CSR exposes the raw forward CSR triple (local indexes) without copying.
// Callers must not modify the slices.
func (ss *SubSpace) CSR() (off []int64, succ []int32, prob []float64) {
	return ss.off, ss.succ, ss.prob
}

// Reverse returns the predecessor view of the subspace, built on first use
// and cached. Note the view is subspace-relative: predecessors outside the
// reachable set do not exist here — which is exactly what forward-looking
// analyses (reachability of L, divergence, hitting times) of reachable
// states need, since the subspace is closed under successors.
func (ss *SubSpace) Reverse() Reverse {
	ss.revOnce.Do(func() {
		ss.rev = ReverseCSR(ss.States, ss.off, ss.succ, ss.Workers)
	})
	return ss.rev
}

// GlobalIndex returns the global (mixed-radix) index of local state s.
func (ss *SubSpace) GlobalIndex(s int) int64 { return ss.table.Globals()[s] }

// Globals returns the global indexes of all discovered states in local-id
// (= ascending global) order. The slice aliases the subspace.
func (ss *SubSpace) Globals() []int64 { return ss.table.Globals() }

// LocalIndex returns the local id of the global index g, or -1 when g was
// not discovered.
func (ss *SubSpace) LocalIndex(g int64) int32 { return ss.table.Lookup(g) }

// Config decodes local state s into a fresh configuration.
func (ss *SubSpace) Config(s int) protocol.Configuration {
	return ss.Enc.Decode(ss.GlobalIndex(s), nil)
}

// ConfigInto implements TransitionSystem.
func (ss *SubSpace) ConfigInto(s int, dst protocol.Configuration) protocol.Configuration {
	return ss.Enc.Decode(ss.GlobalIndex(s), dst)
}

// Algorithm implements TransitionSystem.
func (ss *SubSpace) Algorithm() protocol.Algorithm { return ss.Alg }

// Policy implements TransitionSystem.
func (ss *SubSpace) Policy() scheduler.Policy { return ss.Pol }

// NumStates implements TransitionSystem.
func (ss *SubSpace) NumStates() int { return ss.States }

// TotalConfigs implements TransitionSystem: the size of the full index
// range the subspace was carved out of.
func (ss *SubSpace) TotalConfigs() int64 { return ss.Enc.Total() }

// IsLegit implements TransitionSystem.
func (ss *SubSpace) IsLegit(s int) bool { return ss.Legit[s] }

// LegitSet implements TransitionSystem.
func (ss *SubSpace) LegitSet() []bool { return ss.Legit }

// PoolWorkers implements TransitionSystem.
func (ss *SubSpace) PoolWorkers() int { return ss.Workers }

// StateOf implements TransitionSystem: ok is false when cfg was not
// discovered by the frontier exploration.
func (ss *SubSpace) StateOf(cfg protocol.Configuration) (int32, bool) {
	l := ss.table.Lookup(ss.Enc.Encode(cfg))
	return l, l >= 0
}

// frontierGrain is the chunk size workers claim from the current BFS
// level. It is a constant — never derived from the worker count — so the
// serial stitch order, and with it every assigned local id, is identical
// for every pool size.
const frontierGrain = 1 << 10

// frontierChunk is one chunk's exploration output: per-state degrees and
// legitimacy, and the concatenated successor rows with global targets.
// local[i] caches the read-only dedup resolution of to[i] from the
// parallel phase (-1 when the target was not yet discovered at phase
// start; the serial stitch resolves or assigns those).
type frontierChunk struct {
	deg   []int32
	legit []bool
	to    []int64
	local []int32
	prob  []float64
}

// BuildFrom explores the forward closure of the seed set (global
// configuration indexes under the canonical encoder of a, i.e.
// protocol.NewEncoder(a, 0)) under pol with a parallel frontier BFS and
// returns the discovered subspace. Duplicate seeds are deduplicated.
// opt.MaxStates caps the number of *discovered* states (0 means
// DefaultMaxStates) — unlike Build, the full index range may exceed the
// int32 state-index limit, since only discovered states need local ids.
// The result is deterministic and independent of opt.Workers.
//
// BuildFrom is the one-shot face of the resumable Builder: callers that
// grow their seed set incrementally (the checker's k-fault sweeps) keep a
// Builder alive and Extend it instead of rebuilding per wave.
func BuildFrom(a protocol.Algorithm, pol scheduler.Policy, seeds []int64, opt Options) (*SubSpace, error) {
	return BuildFromContext(context.Background(), a, pol, seeds, opt)
}

// BuildFromContext is BuildFrom with cooperative cancellation: ctx is
// checked at every BFS shell boundary, so a cancelled exploration returns
// an error wrapping ctx.Err() at the next shell without producing a
// subspace.
func BuildFromContext(ctx context.Context, a protocol.Algorithm, pol scheduler.Policy, seeds []int64, opt Options) (*SubSpace, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("statespace: BuildFrom needs at least one seed")
	}
	b, err := NewBuilder(a, pol, opt)
	if err != nil {
		return nil, err
	}
	if err := b.ExtendContext(ctx, seeds); err != nil {
		return nil, err
	}
	return b.seal(true), nil
}

// EncodeConfigs validates each configuration against a's process domains
// and encodes it to its global mixed-radix index under a's canonical
// encoder — the seed-set preparation shared by BuildFromConfigs and the
// cached build paths of internal/spacecache.
func EncodeConfigs(a protocol.Algorithm, cfgs []protocol.Configuration) ([]int64, error) {
	enc, err := protocol.NewEncoder(a, 0)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	n := a.Graph().N()
	seeds := make([]int64, len(cfgs))
	for i, cfg := range cfgs {
		if len(cfg) != n {
			return nil, fmt.Errorf("statespace: seed %d has %d process states, want %d", i, len(cfg), n)
		}
		for p, v := range cfg {
			if v < 0 || v >= a.StateCount(p) {
				return nil, fmt.Errorf("statespace: seed %d: state %d out of domain [0,%d) at p=%d", i, v, a.StateCount(p), p)
			}
		}
		seeds[i] = enc.Encode(cfg)
	}
	return seeds, nil
}

// BuildFromConfigs is BuildFrom with the seed set given as configurations;
// each is validated against the process state domains before encoding.
func BuildFromConfigs(a protocol.Algorithm, pol scheduler.Policy, cfgs []protocol.Configuration, opt Options) (*SubSpace, error) {
	return BuildFromConfigsContext(context.Background(), a, pol, cfgs, opt)
}

// BuildFromConfigsContext is BuildFromConfigs with cooperative
// cancellation, with BuildFromContext's semantics.
func BuildFromConfigsContext(ctx context.Context, a protocol.Algorithm, pol scheduler.Policy, cfgs []protocol.Configuration, opt Options) (*SubSpace, error) {
	seeds, err := EncodeConfigs(a, cfgs)
	if err != nil {
		return nil, err
	}
	return BuildFromContext(ctx, a, pol, seeds, opt)
}

// canonicalOrder returns the permutation (new id -> old id) that sorts
// local ids into ascending-global order.
func canonicalOrder(globals []int64) []int32 {
	order := make([]int32, len(globals))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return globals[order[i]] < globals[order[j]] })
	return order
}

// permuteCSR writes the CSR triple and legitimacy vector permuted by order
// (new id -> old id) into fresh arrays, remapping row targets through the
// inverse permutation. Because row targets were merged in ascending
// *global* order, every remapped row stays sorted without re-sorting.
func permuteCSR(order []int32, off []int64, succ []int32, prob []float64, legit []bool) ([]int64, []int32, []float64, []bool) {
	n := len(order)
	perm := make([]int32, n) // old id -> new id
	for newID, old := range order {
		perm[old] = int32(newID)
	}
	newOff := make([]int64, n+1)
	newSucc := make([]int32, len(succ))
	newProb := make([]float64, len(prob))
	newLegit := make([]bool, n)
	at := int64(0)
	for newID, old := range order {
		newOff[newID] = at
		row := succ[off[old]:off[old+1]]
		prow := prob[off[old]:off[old+1]]
		for j, t := range row {
			newSucc[at+int64(j)] = perm[t]
			newProb[at+int64(j)] = prow[j]
		}
		at += int64(len(row))
		newLegit[newID] = legit[old]
	}
	newOff[n] = at
	return newOff, newSucc, newProb, newLegit
}

// canonicalize renumbers local ids into ascending-global order and remaps
// the CSR accordingly. Discovery order depends on the seed ordering and
// BFS schedule; ascending-global order is a canonical function of the seed
// *set* and aligns subspace iteration order with full-space iteration
// order (so analyses pick identical witnesses).
func (ss *SubSpace) canonicalize() {
	order := canonicalOrder(ss.table.Globals())
	sorted := true
	for i, old := range order {
		if int(old) != i {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	ss.off, ss.succ, ss.prob, ss.Legit = permuteCSR(order, ss.off, ss.succ, ss.prob, ss.Legit)
	ss.table.Renumber(order)
}
