package statespace

// Dedup assigns dense local ids to sparse global configuration indexes —
// the visited set of every frontier exploration (BuildFrom's reachable
// subspaces, the checker's fault-ball enumeration). Small index ranges get
// a dense int32 array (one probe, no hashing); large ranges get a sharded
// hash table whose memory is proportional to the number of *discovered*
// states, not the range — which is the whole point of frontier
// exploration, whose subspaces routinely live inside index ranges far too
// large to allocate a visited array for.
//
// Concurrency contract: Lookup is safe from any number of goroutines while
// no Add is running (shards are plain maps; the frontier engine alternates
// a parallel read-only expansion phase with a serial insertion phase).
// Add itself must be serialized by the caller — id assignment order is
// what makes frontier exploration deterministic.

// dedupShards is the shard count of the sparse table. Sharding bounds the
// per-map rehash cost as the discovered set grows and keeps the table
// ready for concurrent per-shard insertion if a future engine wants it.
const dedupShards = 256

// DenseDedupLimit is the index-range size up to which Dedup uses the dense
// visited array (4 bytes per configuration of the range) instead of the
// sharded table.
const DenseDedupLimit = 1 << 22

// Dedup maps global configuration indexes to the dense local ids
// [0, Len()), in insertion order. The zero value is not usable; call
// NewDedup (growable) or NewSortedDedup (sealed, binary-searched).
type Dedup struct {
	dense   []int32 // global -> local id, -1 when absent (small ranges)
	shards  []map[int64]int32
	sorted  bool    // sealed: globals strictly ascending, Lookup binary-searches
	globals []int64 // local id -> global index, insertion order
}

// NewDedup returns an empty table for global indexes in [0, total).
func NewDedup(total int64) *Dedup {
	d := &Dedup{}
	if total <= DenseDedupLimit {
		d.dense = make([]int32, total)
		for i := range d.dense {
			d.dense[i] = -1
		}
		return d
	}
	d.shards = make([]map[int64]int32, dedupShards)
	for i := range d.shards {
		d.shards[i] = make(map[int64]int32)
	}
	return d
}

// shardOf spreads global indexes over the shards by Fibonacci hashing (the
// indexes themselves are highly structured — mixed-radix neighbors differ
// by one weight — so the raw low bits would collide pathologically).
func shardOf(g int64) int {
	return int((uint64(g) * 0x9e3779b97f4a7c15) >> 56)
}

// Lookup returns the local id of g, or -1 when g has not been added.
func (d *Dedup) Lookup(g int64) int32 {
	if d.sorted {
		lo, hi := 0, len(d.globals)
		for lo < hi {
			mid := (lo + hi) / 2
			if d.globals[mid] < g {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(d.globals) && d.globals[lo] == g {
			return int32(lo)
		}
		return -1
	}
	if d.dense != nil {
		return d.dense[g]
	}
	if id, ok := d.shards[shardOf(g)][g]; ok {
		return id
	}
	return -1
}

// Add inserts g if absent and returns its local id (existing or newly
// assigned). Ids are assigned in insertion order. Add must not be called
// on a sealed (NewSortedDedup) table.
func (d *Dedup) Add(g int64) int32 {
	if d.sorted {
		panic("statespace: Add on a sealed dedup table")
	}
	if d.dense != nil {
		if id := d.dense[g]; id >= 0 {
			return id
		}
		id := int32(len(d.globals))
		d.dense[g] = id
		d.globals = append(d.globals, g)
		return id
	}
	shard := d.shards[shardOf(g)]
	if id, ok := shard[g]; ok {
		return id
	}
	id := int32(len(d.globals))
	shard[g] = id
	d.globals = append(d.globals, g)
	return id
}

// NewDedupFromGlobals rebuilds a growable table over [0, total) whose id
// order is exactly the given global list (id i -> globals[i]). The
// resumable frontier Builder uses it to re-adopt a sealed subspace it will
// keep growing; the list must be duplicate-free.
func NewDedupFromGlobals(total int64, globals []int64) *Dedup {
	d := NewDedup(total)
	for _, g := range globals {
		d.Add(g)
	}
	return d
}

// NewSortedDedup returns a sealed table whose id order is the given
// strictly-ascending global list: Lookup binary-searches the list itself —
// no dense array over the range, no hash table, no per-entry insertion
// cost. Canonical subspaces (sealed snapshots, deserialized caches) are
// exactly this shape: their ids are ascending-global by construction and
// their state set never grows. The list is adopted, not copied; Add and
// Renumber panic.
func NewSortedDedup(globals []int64) *Dedup {
	return &Dedup{sorted: true, globals: globals}
}

// Len returns the number of distinct globals added.
func (d *Dedup) Len() int { return len(d.globals) }

// Globals returns the added global indexes in id order. The slice aliases
// the table; callers must not modify it.
func (d *Dedup) Globals() []int64 { return d.globals }

// Renumber reassigns local ids so that id order equals the given
// permutation: order[newID] is the old id whose global now gets newID.
// Used by the frontier engine to canonicalize discovery-order ids into
// ascending-global order after exploration.
func (d *Dedup) Renumber(order []int32) {
	if d.sorted {
		panic("statespace: Renumber on a sealed dedup table")
	}
	remapped := make([]int64, len(order))
	for newID, old := range order {
		g := d.globals[old]
		remapped[newID] = g
		if d.dense != nil {
			d.dense[g] = int32(newID)
		} else {
			d.shards[shardOf(g)][g] = int32(newID)
		}
	}
	d.globals = remapped
}
