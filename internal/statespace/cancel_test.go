package statespace

// Cooperative-cancellation tests for the exploration engines: a context
// canceled before the call fails immediately, and one canceled while the
// frontier runs stops at the next shell boundary — the granularity the
// Context variants promise.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/obs"
	"weakstab/internal/scheduler"
)

func TestBuildContextPreCanceled(t *testing.T) {
	ring, err := tokenring.New(6)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, ring, scheduler.CentralPolicy{}, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled BuildContext: err = %v, want a wrapped context.Canceled", err)
	}
}

// TestBuildFromContextCancelAtShell cancels mid-exploration, from inside
// the exploration itself: an obs hook fires the cancel on the first
// frontier.shell event, and the builder must stop at the next shell
// boundary with an error naming the shell and wrapping context.Canceled.
func TestBuildFromContextCancelAtShell(t *testing.T) {
	ring, err := tokenring.New(6)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := obs.New()
	o.AddHook(func(name string, _ any) {
		if name == "frontier.shell" {
			cancel()
		}
	})
	// A single seed forces a deep BFS: many shells, so the first-shell
	// cancel leaves real work undone.
	_, err = BuildFromContext(ctx, ring, scheduler.CentralPolicy{}, []int64{0}, Options{Obs: o})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled BuildFromContext: err = %v, want a wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled at shell") {
		t.Fatalf("error %q does not name the shell boundary", err)
	}
}

// TestBuildFromContextCancelIsClean pins that a canceled build returns a
// nil system (no partial result escapes).
func TestBuildFromContextCancelIsClean(t *testing.T) {
	ring, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ss, err := BuildFromContext(ctx, ring, scheduler.CentralPolicy{}, []int64{0}, Options{})
	if err == nil || ss != nil {
		t.Fatalf("canceled build returned (%v, %v), want (nil, error)", ss, err)
	}
}
