package statespace

// BuildReference is the seed-era exploration strategy kept as an oracle:
// single-threaded, materializing every successor configuration through
// protocol.StepOutcomes per activation subset and deduplicating through a
// map — exactly what checker.Explore and markov.FromAlgorithm each did
// before they shared one engine. Parity tests compare Build against it;
// the exploration benchmarks use it as the baseline the engine is measured
// against. It produces the same Space (same rows, same probability sums).

import (
	"fmt"
	"math"
	"sort"

	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// BuildReference explores like Build but with the pre-engine two-pass-era
// code path. maxStates caps the space (0 means DefaultMaxStates).
func BuildReference(a protocol.Algorithm, pol scheduler.Policy, maxStates int64) (*Space, error) {
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	enc, err := protocol.NewEncoder(a, maxStates)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	if enc.Total() > math.MaxInt32 {
		return nil, fmt.Errorf("statespace: %d configurations exceed the int32 index range", enc.Total())
	}
	total := int(enc.Total())
	sp := &Space{
		Alg:     a,
		Pol:     pol,
		Enc:     enc,
		States:  total,
		Legit:   make([]bool, total),
		Workers: 1,
		off:     make([]int64, total+1),
	}
	cfg := make(protocol.Configuration, a.Graph().N())
	for s := 0; s < total; s++ {
		sp.off[s] = int64(len(sp.succ))
		cfg = enc.Decode(int64(s), cfg)
		sp.Legit[s] = a.Legitimate(cfg)
		enabled := protocol.EnabledProcesses(a, cfg)
		if len(enabled) == 0 {
			continue
		}
		subsets := pol.Subsets(enabled)
		w := 1 / float64(len(subsets))
		var row edgeSlice
		for _, sub := range subsets {
			for _, out := range protocol.StepOutcomes(a, cfg, sub) {
				row = append(row, edge{to: enc.Encode(out.Config), p: w * out.Prob})
			}
		}
		sort.Stable(row)
		for i := 0; i < len(row); {
			to, p := row[i].to, row[i].p
			for i++; i < len(row) && row[i].to == to; i++ {
				p += row[i].p
			}
			sp.succ = append(sp.succ, int32(to))
			sp.prob = append(sp.prob, p)
		}
	}
	sp.off[total] = int64(len(sp.succ))
	return sp, nil
}
