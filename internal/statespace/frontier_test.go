package statespace

import (
	"testing"

	"weakstab/internal/algorithms/dijkstra"
	"weakstab/internal/algorithms/leadertree"
	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/graph"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

func frontierMatrix(t *testing.T) []struct {
	name string
	alg  protocol.Algorithm
	pol  scheduler.Policy
} {
	t.Helper()
	ring5, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	ring6, err := tokenring.New(6)
	if err != nil {
		t.Fatal(err)
	}
	chain4, err := graph.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := leadertree.New(chain4)
	if err != nil {
		t.Fatal(err)
	}
	dijk, err := dijkstra.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		alg  protocol.Algorithm
		pol  scheduler.Policy
	}{
		{"tokenring5/central", ring5, scheduler.CentralPolicy{}},
		{"tokenring5/distributed", ring5, scheduler.DistributedPolicy{}},
		{"tokenring6/synchronous", ring6, scheduler.SynchronousPolicy{}},
		{"leadertree4/central", leader, scheduler.CentralPolicy{}},
		{"leadertree4/distributed", leader, scheduler.DistributedPolicy{}},
		{"dijkstra4/central", dijk, scheduler.CentralPolicy{}},
	}
}

func allSeeds(total int64) []int64 {
	out := make([]int64, total)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// TestBuildFromAllSeedsMatchesBuild: seeding the frontier with every
// configuration must reproduce the full space bit-for-bit — same CSR
// triple, same legitimacy, identity local↔global mapping — for every
// algorithm × policy × worker count.
func TestBuildFromAllSeedsMatchesBuild(t *testing.T) {
	for _, tc := range frontierMatrix(t) {
		full, err := Build(tc.alg, tc.pol, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, workers := range []int{1, 3, 8} {
			ss, err := BuildFrom(tc.alg, tc.pol, allSeeds(full.Enc.Total()), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s w=%d: %v", tc.name, workers, err)
			}
			if ss.States != full.States {
				t.Fatalf("%s w=%d: %d states, want %d", tc.name, workers, ss.States, full.States)
			}
			fOff, fSucc, fProb := full.CSR()
			sOff, sSucc, sProb := ss.CSR()
			for s := 0; s < full.States; s++ {
				if ss.GlobalIndex(s) != int64(s) {
					t.Fatalf("%s w=%d: local %d maps to global %d", tc.name, workers, s, ss.GlobalIndex(s))
				}
				if ss.Legit[s] != full.Legit[s] {
					t.Fatalf("%s w=%d: legitimacy mismatch at %d", tc.name, workers, s)
				}
				if sOff[s] != fOff[s] || sOff[s+1] != fOff[s+1] {
					t.Fatalf("%s w=%d: row offsets differ at %d", tc.name, workers, s)
				}
			}
			for i := range fSucc {
				if sSucc[i] != fSucc[i] {
					t.Fatalf("%s w=%d: successor %d differs: %d vs %d", tc.name, workers, i, sSucc[i], fSucc[i])
				}
				if sProb[i] != fProb[i] {
					t.Fatalf("%s w=%d: probability %d differs: %g vs %g", tc.name, workers, i, sProb[i], fProb[i])
				}
			}
		}
	}
}

// reachableFrom computes the expected reachable set by a reference BFS
// over the full space.
func reachableFrom(full *Space, seeds []int64) map[int64]bool {
	seen := map[int64]bool{}
	var queue []int64
	for _, g := range seeds {
		if !seen[g] {
			seen[g] = true
			queue = append(queue, g)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, t := range full.Succ(int(queue[head])) {
			if !seen[int64(t)] {
				seen[int64(t)] = true
				queue = append(queue, int64(t))
			}
		}
	}
	return seen
}

// TestBuildFromSubsetParity: frontier exploration from a proper seed set
// must discover exactly the forward closure of the seeds, with every row
// equal (under the local↔global mapping) to the full space's row — bit
// equal probabilities included — for every worker count. Seeds covered:
// a singleton legitimate configuration, a singleton illegitimate one, and
// a small mixed set.
func TestBuildFromSubsetParity(t *testing.T) {
	for _, tc := range frontierMatrix(t) {
		full, err := Build(tc.alg, tc.pol, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var firstLegit, firstIllegit int64 = -1, -1
		for s := 0; s < full.States; s++ {
			if full.Legit[s] && firstLegit < 0 {
				firstLegit = int64(s)
			}
			if !full.Legit[s] && firstIllegit < 0 {
				firstIllegit = int64(s)
			}
		}
		seedSets := [][]int64{
			{firstLegit},
			{firstIllegit},
			{firstLegit, firstIllegit, int64(full.States) - 1},
		}
		for si, seeds := range seedSets {
			want := reachableFrom(full, seeds)
			for _, workers := range []int{1, 4} {
				ss, err := BuildFrom(tc.alg, tc.pol, seeds, Options{Workers: workers})
				if err != nil {
					t.Fatalf("%s seeds#%d w=%d: %v", tc.name, si, workers, err)
				}
				if ss.States != len(want) {
					t.Fatalf("%s seeds#%d w=%d: %d states, want %d", tc.name, si, workers, ss.States, len(want))
				}
				prevG := int64(-1)
				for l := 0; l < ss.States; l++ {
					g := ss.GlobalIndex(l)
					if !want[g] {
						t.Fatalf("%s seeds#%d: discovered unreachable global %d", tc.name, si, g)
					}
					if g <= prevG {
						t.Fatalf("%s seeds#%d: locals not in ascending global order", tc.name, si)
					}
					prevG = g
					if ss.LocalIndex(g) != int32(l) {
						t.Fatalf("%s seeds#%d: LocalIndex(%d) = %d, want %d", tc.name, si, g, ss.LocalIndex(g), l)
					}
					if ss.Legit[l] != full.Legit[g] {
						t.Fatalf("%s seeds#%d: legitimacy mismatch at global %d", tc.name, si, g)
					}
					subRow, subProb := ss.Succ(l), ss.Prob(l)
					fullRow, fullProb := full.Succ(int(g)), full.Prob(int(g))
					if len(subRow) != len(fullRow) {
						t.Fatalf("%s seeds#%d: row length mismatch at global %d", tc.name, si, g)
					}
					for j := range subRow {
						if ss.GlobalIndex(int(subRow[j])) != int64(fullRow[j]) {
							t.Fatalf("%s seeds#%d: target mismatch at global %d", tc.name, si, g)
						}
						if subProb[j] != fullProb[j] {
							t.Fatalf("%s seeds#%d: probability mismatch at global %d: %g vs %g",
								tc.name, si, g, subProb[j], fullProb[j])
						}
					}
				}
			}
		}
	}
}

// TestBuildFromDeterministicAcrossWorkers pins the exact equality of two
// frontier explorations at different pool sizes.
func TestBuildFromDeterministicAcrossWorkers(t *testing.T) {
	ring, err := tokenring.New(6)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{7, 123, 4000}
	base, err := BuildFrom(ring, scheduler.DistributedPolicy{}, seeds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		got, err := BuildFrom(ring, scheduler.DistributedPolicy{}, seeds, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.States != base.States || got.Edges() != base.Edges() {
			t.Fatalf("w=%d: shape differs", workers)
		}
		bOff, bSucc, bProb := base.CSR()
		gOff, gSucc, gProb := got.CSR()
		for s := 0; s <= base.States; s++ {
			if bOff[s] != gOff[s] {
				t.Fatalf("w=%d: offsets differ", workers)
			}
		}
		for i := range bSucc {
			if bSucc[i] != gSucc[i] || bProb[i] != gProb[i] {
				t.Fatalf("w=%d: edges differ at %d", workers, i)
			}
		}
		for s := 0; s < base.States; s++ {
			if base.GlobalIndex(s) != got.GlobalIndex(s) {
				t.Fatalf("w=%d: globals differ at %d", workers, s)
			}
		}
	}
}

// TestBuildFromValidation exercises the error paths: empty and
// out-of-range seed sets, and the discovered-state cap.
func TestBuildFromValidation(t *testing.T) {
	ring, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFrom(ring, scheduler.CentralPolicy{}, nil, Options{}); err == nil {
		t.Fatal("empty seed set accepted")
	}
	if _, err := BuildFrom(ring, scheduler.CentralPolicy{}, []int64{-1}, Options{}); err == nil {
		t.Fatal("negative seed accepted")
	}
	if _, err := BuildFrom(ring, scheduler.CentralPolicy{}, []int64{1 << 40}, Options{}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if _, err := BuildFrom(ring, scheduler.CentralPolicy{}, []int64{0}, Options{MaxStates: 4}); err == nil {
		t.Fatal("cap-exceeding exploration accepted")
	}
	if _, err := BuildFromConfigs(ring, scheduler.CentralPolicy{}, []protocol.Configuration{{0, 0}}, Options{}); err == nil {
		t.Fatal("short seed configuration accepted")
	}
	if _, err := BuildFromConfigs(ring, scheduler.CentralPolicy{}, []protocol.Configuration{{0, 0, 0, 0, 9}}, Options{}); err == nil {
		t.Fatal("out-of-domain seed configuration accepted")
	}
}

// TestBuildFromConfigsMatchesBuildFrom pins the configuration-seeded
// convenience wrapper to the index-seeded engine.
func TestBuildFromConfigsMatchesBuildFrom(t *testing.T) {
	ring, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := protocol.NewEncoder(ring, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []protocol.Configuration{{1, 0, 1, 1, 0}, {0, 0, 0, 0, 0}}
	seeds := []int64{enc.Encode(cfgs[0]), enc.Encode(cfgs[1])}
	a, err := BuildFromConfigs(ring, scheduler.CentralPolicy{}, cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFrom(ring, scheduler.CentralPolicy{}, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Edges() != b.Edges() {
		t.Fatalf("config-seeded subspace differs: %d/%d states, %d/%d edges",
			a.States, b.States, a.Edges(), b.Edges())
	}
}

// TestSubSpaceStateOf checks membership queries on a proper subspace.
func TestSubSpaceStateOf(t *testing.T) {
	ring, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(ring, scheduler.CentralPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var legitSeed int64 = -1
	for s := 0; s < full.States; s++ {
		if full.Legit[s] {
			legitSeed = int64(s)
			break
		}
	}
	ss, err := BuildFrom(ring, scheduler.CentralPolicy{}, []int64{legitSeed}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.States >= full.States {
		t.Fatalf("closure of a legitimate seed covers the whole space (%d states)", ss.States)
	}
	inSub := map[int64]bool{}
	for l := 0; l < ss.States; l++ {
		inSub[ss.GlobalIndex(l)] = true
	}
	cfg := make(protocol.Configuration, 5)
	for s := 0; s < full.States; s++ {
		cfg = full.Enc.Decode(int64(s), cfg)
		l, ok := ss.StateOf(cfg)
		if ok != inSub[int64(s)] {
			t.Fatalf("StateOf(%v) membership = %v, want %v", cfg, ok, inSub[int64(s)])
		}
		if ok && ss.GlobalIndex(int(l)) != int64(s) {
			t.Fatalf("StateOf(%v) local %d maps back to %d", cfg, l, ss.GlobalIndex(int(l)))
		}
	}
}
