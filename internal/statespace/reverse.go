// Reverse-CSR construction and backward reachability. Every "does X reach
// the target set" question the checker and the Markov analysis ask is a
// multi-source BFS over the predecessor graph; this file builds that graph
// once per space by parallel counting sort and expands the BFS frontiers on
// the same worker pool the exploration engine uses. Self-loops are dropped
// at build time: no reachability pass can use them (a self-loop never
// reaches anything new and never shortens a path).
package statespace

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Reverse is the predecessor (reverse-CSR) view of a forward CSR graph:
// Preds(t) lists the states with an edge into t, sorted ascending.
type Reverse struct {
	Off []int64 // row offsets, len states+1
	Src []int32 // predecessor state indexes, ascending per row
}

// Preds returns the predecessors of t. The slice aliases the view; callers
// must not modify it.
func (r Reverse) Preds(t int32) []int32 { return r.Src[r.Off[t]:r.Off[t+1]] }

// States returns the number of states of the underlying graph.
func (r Reverse) States() int { return len(r.Off) - 1 }

// serialReverseLimit is the edge count below which the counting sort runs
// single-threaded (the pass is memory-bound; small graphs cannot amortize
// worker startup).
const serialReverseLimit = 1 << 16

// maxReverseWorkers bounds the per-worker count arrays (one int32 per
// state per worker) the parallel counting sort allocates.
const maxReverseWorkers = 16

// ReverseCSR builds the predecessor view of the forward CSR (off, succ)
// over states states by counting sort: one parallel pass counts indegrees
// per source range, a prefix sum lays out the rows, and a second parallel
// pass scatters sources into their slots. Source ranges are contiguous and
// scanned in order, so every predecessor row comes out sorted ascending and
// the result is identical for every worker count. Self-loops are dropped.
func ReverseCSR(states int, off []int64, succ []int32, workers int) Reverse {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > maxReverseWorkers {
		workers = maxReverseWorkers
	}
	edges := int64(len(succ))
	roff := make([]int64, states+1)
	if workers == 1 || edges < serialReverseLimit {
		indeg := make([]int32, states)
		for s := 0; s < states; s++ {
			for _, t := range succ[off[s]:off[s+1]] {
				if int(t) != s {
					indeg[t]++
				}
			}
		}
		var at int64
		for t := 0; t < states; t++ {
			roff[t] = at
			at += int64(indeg[t])
		}
		roff[states] = at
		rsrc := make([]int32, at)
		cur := indeg // reuse as per-row write cursors
		for i := range cur {
			cur[i] = 0
		}
		for s := 0; s < states; s++ {
			for _, t := range succ[off[s]:off[s+1]] {
				if int(t) != s {
					rsrc[roff[t]+int64(cur[t])] = int32(s)
					cur[t]++
				}
			}
		}
		return Reverse{Off: roff, Src: rsrc}
	}

	// Edge-balanced contiguous source ranges: worker w owns states
	// [bounds[w], bounds[w+1]).
	bounds := make([]int, workers+1)
	bounds[workers] = states
	for w := 1; w < workers; w++ {
		cut := edges * int64(w) / int64(workers)
		bounds[w] = sort.Search(states, func(s int) bool { return off[s] >= cut })
	}
	cnt := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := make([]int32, states)
			for s := bounds[w]; s < bounds[w+1]; s++ {
				for _, t := range succ[off[s]:off[s+1]] {
					if int(t) != s {
						c[t]++
					}
				}
			}
			cnt[w] = c
		}(w)
	}
	wg.Wait()
	// Row layout + per-worker write cursors (relative to the row start, so
	// they fit in the count arrays being repurposed).
	var at int64
	for t := 0; t < states; t++ {
		roff[t] = at
		rel := int32(0)
		for w := 0; w < workers; w++ {
			n := cnt[w][t]
			cnt[w][t] = rel
			rel += n
		}
		at += int64(rel)
	}
	roff[states] = at
	rsrc := make([]int32, at)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := cnt[w]
			for s := bounds[w]; s < bounds[w+1]; s++ {
				for _, t := range succ[off[s]:off[s+1]] {
					if int(t) != s {
						rsrc[roff[t]+int64(cur[t])] = int32(s)
						cur[t]++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return Reverse{Off: roff, Src: rsrc}
}

// parallelFrontierMin is the frontier size below which a BFS level expands
// single-threaded.
const parallelFrontierMin = 1 << 12

// BackwardBFS runs a multi-source BFS over the reverse edges and returns,
// for every state, the length of its shortest forward path into the seed
// set: 0 on the seeds themselves, -1 where no path exists. skipPred, when
// non-nil, forbids states from occurring in the interior of a path: an
// edge pre->s is not traversed when skipPred[pre] (seeds are still
// reported as 0 regardless). Large frontiers expand in parallel on the
// worker pool; distances are level-synchronous and therefore identical for
// every worker count.
func (r Reverse) BackwardBFS(seed []bool, skipPred []bool, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	states := r.States()
	dist := make([]int32, states)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []int32
	for s := 0; s < states; s++ {
		if seed[s] {
			dist[s] = 0
			frontier = append(frontier, int32(s))
		}
	}
	var spare []int32 // retired frontier recycled as the next level's buffer
	for level := int32(1); len(frontier) > 0; level++ {
		if workers == 1 || len(frontier) < parallelFrontierMin {
			next := spare[:0]
			for _, s := range frontier {
				for _, pre := range r.Preds(s) {
					if skipPred != nil && skipPred[pre] {
						continue
					}
					if dist[pre] == -1 {
						dist[pre] = level
						next = append(next, pre)
					}
				}
			}
			spare = frontier
			frontier = next
			continue
		}
		// Parallel expansion: workers claim frontier slices and mark
		// predecessors by CAS, so every state joins the next frontier
		// exactly once. The marked set is independent of the race winners,
		// so distances stay deterministic.
		parts := make([][]int32, workers)
		per := (len(frontier) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * per
			if lo >= len(frontier) {
				break
			}
			hi := min(lo+per, len(frontier))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var local []int32
				for _, s := range frontier[lo:hi] {
					for _, pre := range r.Preds(s) {
						if skipPred != nil && skipPred[pre] {
							continue
						}
						if atomic.CompareAndSwapInt32(&dist[pre], -1, level) {
							local = append(local, pre)
						}
					}
				}
				parts[w] = local
			}(w, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, p := range parts {
			frontier = append(frontier, p...)
		}
	}
	return dist
}
