// The resumable face of the frontier engine. BuildFrom answers one-shot
// questions — "explore the closure of this seed set" — but the k-fault
// sweeps of the checker grow their seed set incrementally: the distance-
// (k+1) ball is the distance-k ball plus one shell. Re-running BuildFrom
// per k re-explores the shared interior every time. Builder keeps the
// exploration state alive between seed waves instead: Extend adds seeds
// and explores exactly the states not yet discovered, and Seal snapshots
// the current closure as a canonical SubSpace without disturbing the
// builder — so a k=0..kmax sweep pays for one exploration of the final
// closure, total, while still observing a sealed subspace at every k.
//
// Sealing canonicalizes a *copy*: the builder's own table and CSR stay in
// discovery order, which is what makes further Extend calls valid. Because
// a SubSpace is a pure function of (algorithm, policy, seed set) —
// canonicalization erases discovery order — a sealed snapshot is
// bit-identical to BuildFrom over the union of all seed waves, which the
// parity tests pin.
package statespace

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"

	"weakstab/internal/obs"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// Builder is a resumable frontier exploration: a BuildFrom whose seed set
// can grow between explorations. The zero value is not usable; call
// NewBuilder or ResumeFrom.
type Builder struct {
	alg       protocol.Algorithm
	pol       scheduler.Policy
	enc       *protocol.Encoder
	workers   int
	maxStates int64

	table *Dedup
	off   []int64
	succ  []int32
	prob  []float64
	legit []bool
	// explored counts the states whose successor rows are already in the
	// CSR; states [explored, table.Len()) are the pending BFS frontier.
	// Extend restores the invariant explored == table.Len() (closure).
	explored int

	// o and shell instrument the exploration: one frontier.shell event
	// per BFS level (emitted from the serial stitch, so the stream is
	// deterministic), numbered across the builder's whole lifetime.
	o     *obs.Observer
	shell int

	pool   sync.Pool
	chunks []frontierChunk
}

// NewBuilder returns an empty resumable exploration of a's configuration
// space under pol. opt has BuildFrom's semantics: MaxStates caps the total
// number of discovered states across all Extend calls (0 means
// DefaultMaxStates), and the explored closure is deterministic and
// independent of opt.Workers.
func NewBuilder(a protocol.Algorithm, pol scheduler.Policy, opt Options) (*Builder, error) {
	enc, err := protocol.NewEncoder(a, 0)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	b := &Builder{
		alg:       a,
		pol:       pol,
		enc:       enc,
		workers:   resolveWorkers(opt.Workers, math.MaxInt),
		maxStates: StateCap(opt.MaxStates),
		table:     NewDedup(enc.Total()),
		off:       []int64{0},
		o:         obs.Or(opt.Obs),
	}
	b.pool.New = func() any { return newExplorer(a, pol, enc) }
	return b, nil
}

// ResumeFrom returns a builder whose already-explored closure is a deep
// copy of the sealed subspace ss — the resume path of incremental sweeps
// whose earlier radii were loaded from an on-disk cache rather than
// explored in this process. ss is not touched or aliased: the builder can
// grow while the subspace keeps serving analyses. ss must be closed under
// successors, which every SubSpace produced by BuildFrom, Seal or
// ReadSubSpace is.
func ResumeFrom(ss *SubSpace, opt Options) (*Builder, error) {
	b, err := NewBuilder(ss.Alg, ss.Pol, opt)
	if err != nil {
		return nil, err
	}
	if int64(ss.States) > b.maxStates {
		return nil, fmt.Errorf("statespace: resumed subspace of %d states exceeds the %d-state cap", ss.States, b.maxStates)
	}
	off, succ, prob := ss.CSR()
	b.off = slices.Clone(off)
	b.succ = slices.Clone(succ)
	b.prob = slices.Clone(prob)
	b.legit = slices.Clone(ss.Legit)
	b.table = NewDedupFromGlobals(b.enc.Total(), ss.Globals())
	b.explored = ss.States
	return b, nil
}

// Len returns the number of discovered states.
func (b *Builder) Len() int { return b.table.Len() }

// Contains reports whether the global configuration index g has been
// discovered.
func (b *Builder) Contains(g int64) bool { return b.table.Lookup(g) >= 0 }

// addSeeds admits seed globals into the discovered set (duplicates and
// already-discovered states are no-ops), leaving them on the pending
// frontier for the next explore.
func (b *Builder) addSeeds(seeds []int64) error {
	for _, g := range seeds {
		if g < 0 || g >= b.enc.Total() {
			return fmt.Errorf("statespace: seed index %d outside configuration space [0,%d)", g, b.enc.Total())
		}
		b.table.Add(g)
	}
	// Inclusive cap: exactly maxStates distinct seeds are admitted.
	if int64(b.table.Len()) > b.maxStates {
		return fmt.Errorf("statespace: %d seeds exceed the %d-state cap", b.table.Len(), b.maxStates)
	}
	return nil
}

// explore runs the level-synchronous parallel BFS until the discovered set
// is closed under successors — the loop of BuildFrom, resuming from
// whatever was explored before. ctx is checked once per BFS shell (between
// the serial stitch of one level and the parallel expansion of the next),
// so a cancelled exploration stops at the next shell boundary. On error
// the builder is no longer usable.
func (b *Builder) explore(ctx context.Context) error {
	var (
		failMu  sync.Mutex
		failErr error
	)
	for lo := b.explored; lo < b.table.Len(); {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("statespace: exploration canceled at shell %d: %w", b.shell, err)
		}
		hi := b.table.Len()
		edgesBefore := int64(len(b.succ))
		level := b.table.Globals()[lo:hi] // expansion only reads, so no insert moves it
		numChunks := (len(level) + frontierGrain - 1) / frontierGrain
		if cap(b.chunks) < numChunks {
			b.chunks = make([]frontierChunk, numChunks)
		}
		chunks := b.chunks[:numChunks]

		// Parallel expansion of the level: rows with global targets, plus
		// read-only dedup resolutions of the targets already discovered.
		ForRanges(len(level), b.workers, frontierGrain, func(clo, chi int) bool {
			ex := b.pool.Get().(*explorer)
			defer b.pool.Put(ex)
			ck := frontierChunk{
				deg:   make([]int32, chi-clo),
				legit: make([]bool, chi-clo),
			}
			for i := clo; i < chi; i++ {
				g := level[i]
				ex.cfg = b.enc.Decode(g, ex.cfg)
				legit, err := ex.exploreState(g)
				if err != nil {
					failMu.Lock()
					if failErr == nil {
						failErr = err
					}
					failMu.Unlock()
					return false
				}
				ck.legit[i-clo] = legit
				ck.deg[i-clo] = int32(len(ex.outTo))
				for j, t := range ex.outTo {
					ck.to = append(ck.to, t)
					ck.local = append(ck.local, b.table.Lookup(t))
					ck.prob = append(ck.prob, ex.outP[j])
				}
			}
			chunks[clo/frontierGrain] = ck
			return true
		})
		if failErr != nil {
			return failErr
		}

		// Serial stitch in chunk-and-row order: append the level's rows to
		// the CSR, assigning local ids to newly discovered targets in
		// deterministic order.
		for _, ck := range chunks {
			at := 0
			for r, d := range ck.deg {
				b.legit = append(b.legit, ck.legit[r])
				for j := 0; j < int(d); j++ {
					l := ck.local[at]
					if l < 0 {
						// Inclusive cap: the maxStates-th discovered state is
						// admitted; only the one after fails. The Len check
						// short-circuits first so the re-resolving Lookup
						// (the parallel-phase id may be stale — an earlier
						// row of this stitch can have discovered the target)
						// only runs once the table is full.
						if int64(b.table.Len()) >= b.maxStates && b.table.Lookup(ck.to[at]) < 0 {
							return fmt.Errorf("statespace: frontier exploration exceeds the %d-state cap", b.maxStates)
						}
						l = b.table.Add(ck.to[at])
					}
					b.succ = append(b.succ, l)
					b.prob = append(b.prob, ck.prob[at])
					at++
				}
				b.off = append(b.off, int64(len(b.succ)))
			}
		}
		// Observe the completed shell from the serial stitch: counters
		// always (nil-safe no-ops when off), the structured event only
		// when enabled so no payload is built on the disabled path.
		refs := int64(len(b.succ)) - edgesBefore
		newStates := b.table.Len() - hi
		b.o.Counter("frontier.shells").Add(1)
		b.o.Counter("frontier.states").Add(int64(newStates))
		b.o.Counter("frontier.edges").Add(refs)
		if b.o.On() {
			var dedup float64
			if refs > 0 {
				dedup = 1 - float64(newStates)/float64(refs)
			}
			b.o.Emit("frontier.shell", obs.FrontierShell{
				Shell:     b.shell,
				Expanded:  hi - lo,
				New:       newStates,
				States:    b.table.Len(),
				Edges:     int64(len(b.succ)),
				DedupRate: dedup,
			})
		}
		b.shell++
		lo = hi
	}
	b.explored = b.table.Len()
	return nil
}

// Extend admits the seed globals and explores their forward closure,
// growing the discovered set by exactly the states not already known. A
// seed that was already discovered costs nothing. On error the builder is
// no longer usable.
func (b *Builder) Extend(seeds []int64) error {
	return b.ExtendContext(context.Background(), seeds)
}

// ExtendContext is Extend with cooperative cancellation: ctx is checked at
// every BFS shell boundary, so a cancelled extension returns an error
// wrapping ctx.Err() without finishing the closure.
func (b *Builder) ExtendContext(ctx context.Context, seeds []int64) error {
	before := b.table.Len()
	if err := b.addSeeds(seeds); err != nil {
		return err
	}
	// Seed admissions count toward the discovered-state total the same
	// way explored shells do.
	b.o.Counter("frontier.states").Add(int64(b.table.Len() - before))
	return b.explore(ctx)
}

// Seal snapshots the current closure as a canonical SubSpace — local ids
// in ascending-global order, bit-identical to BuildFrom over the union of
// every seed set extended so far. The snapshot is independent of the
// builder: later Extend calls grow the builder without disturbing it.
// Sealing an empty builder (no seeds ever admitted) returns nil.
func (b *Builder) Seal() *SubSpace { return b.seal(false) }

// seal builds the canonical SubSpace; with move=true it takes ownership of
// the builder's arrays instead of copying (the one-shot BuildFrom path —
// the builder must not be used afterwards).
func (b *Builder) seal(move bool) *SubSpace {
	if b.table.Len() == 0 {
		return nil
	}
	ss := &SubSpace{
		Alg:     b.alg,
		Pol:     b.pol,
		Enc:     b.enc,
		States:  b.table.Len(),
		Workers: b.workers,
	}
	if move {
		ss.off, ss.succ, ss.prob, ss.Legit, ss.table = b.off, b.succ, b.prob, b.legit, b.table
		ss.canonicalize()
		return ss
	}
	// Snapshot path: permute the discovery-order arrays straight into
	// fresh canonical storage — one pass, no in-place renumbering — and
	// give the snapshot the sealed binary-search table over its sorted
	// globals (a snapshot never grows, so it needs no hash table at all).
	// The builder's own discovery-order state is untouched.
	globals := b.table.Globals()
	order := canonicalOrder(globals)
	ss.off, ss.succ, ss.prob, ss.Legit = permuteCSR(order, b.off, b.succ, b.prob, b.legit)
	sorted := make([]int64, len(order))
	for newID, old := range order {
		sorted[newID] = globals[old]
	}
	ss.table = NewSortedDedup(sorted)
	return ss
}
