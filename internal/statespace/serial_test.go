package statespace

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"slices"
	"strings"
	"testing"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/scheduler"
)

// assertSpaceEqual checks bit-equality of every persisted field.
func assertSpaceEqual(t *testing.T, want, got *Space) {
	t.Helper()
	if want.States != got.States {
		t.Fatalf("States = %d, want %d", got.States, want.States)
	}
	if !slices.Equal(want.Legit, got.Legit) {
		t.Fatal("Legit vectors differ")
	}
	if !slices.Equal(want.off, got.off) {
		t.Fatal("off arrays differ")
	}
	if !slices.Equal(want.succ, got.succ) {
		t.Fatal("succ arrays differ")
	}
	// Equality on float64 is value-semantics; compare raw bits to pin
	// exact round-tripping.
	if len(want.prob) != len(got.prob) {
		t.Fatalf("prob length %d, want %d", len(got.prob), len(want.prob))
	}
	for i := range want.prob {
		if math.Float64bits(want.prob[i]) != math.Float64bits(got.prob[i]) {
			t.Fatalf("prob[%d] = %x, want %x", i, math.Float64bits(got.prob[i]), math.Float64bits(want.prob[i]))
		}
	}
}

func assertSubSpaceEqual(t *testing.T, want, got *SubSpace) {
	t.Helper()
	if want.States != got.States {
		t.Fatalf("States = %d, want %d", got.States, want.States)
	}
	if !slices.Equal(want.Legit, got.Legit) {
		t.Fatal("Legit vectors differ")
	}
	if !slices.Equal(want.off, got.off) {
		t.Fatal("off arrays differ")
	}
	if !slices.Equal(want.succ, got.succ) {
		t.Fatal("succ arrays differ")
	}
	if len(want.prob) != len(got.prob) {
		t.Fatalf("prob length %d, want %d", len(got.prob), len(want.prob))
	}
	for i := range want.prob {
		if math.Float64bits(want.prob[i]) != math.Float64bits(got.prob[i]) {
			t.Fatalf("prob[%d] differs", i)
		}
	}
	if !slices.Equal(want.Globals(), got.Globals()) {
		t.Fatal("Globals vectors differ")
	}
	// The rebuilt dedup table must answer lookups exactly like the original.
	for i, g := range want.Globals() {
		if got.LocalIndex(g) != int32(i) {
			t.Fatalf("LocalIndex(%d) = %d, want %d", g, got.LocalIndex(g), i)
		}
	}
}

func TestSpaceRoundTrip(t *testing.T) {
	for _, tc := range frontierMatrix(t) {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := Build(tc.alg, tc.pol, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			n, err := sp.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
			}
			got, err := ReadSpace(bytes.NewReader(buf.Bytes()), tc.alg, tc.pol, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			assertSpaceEqual(t, sp, got)
		})
	}
}

func TestSubSpaceRoundTrip(t *testing.T) {
	for _, tc := range frontierMatrix(t) {
		t.Run(tc.name, func(t *testing.T) {
			// Seed with the legitimate set: a nontrivial strict subspace.
			full, err := Build(tc.alg, tc.pol, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var seeds []int64
			for s, ok := range full.Legit {
				if ok {
					seeds = append(seeds, int64(s))
				}
			}
			ss, err := BuildFrom(tc.alg, tc.pol, seeds, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := ss.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := ReadSubSpace(bytes.NewReader(buf.Bytes()), tc.alg, tc.pol, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			assertSubSpaceEqual(t, ss, got)
		})
	}
}

// serializedFixture returns a valid serialized space and its instance.
func serializedFixture(t *testing.T) ([]byte, *Space) {
	t.Helper()
	ring, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Build(ring, scheduler.CentralPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sp
}

func TestReadRejectsTruncation(t *testing.T) {
	data, sp := serializedFixture(t)
	// Cut at a spread of prefix lengths: empty, mid-header, each section
	// boundary neighborhood, and one byte short of complete.
	cuts := []int{0, 3, 17, 31, 32, 40, len(data) / 3, len(data) / 2, len(data) - 9, len(data) - 1}
	for _, cut := range cuts {
		if _, err := ReadSpace(bytes.NewReader(data[:cut]), sp.Alg, sp.Pol, 0, 0); err == nil {
			t.Fatalf("truncation at %d of %d bytes not rejected", cut, len(data))
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	data, sp := serializedFixture(t)
	// Flip one byte at a spread of offsets past the header (header
	// corruption is caught by its own validation; payload corruption must
	// be caught by the checksum).
	for _, at := range []int{40, len(data) / 4, len(data) / 2, len(data) - 12} {
		bad := bytes.Clone(data)
		bad[at] ^= 0x40
		if _, err := ReadSpace(bytes.NewReader(bad), sp.Alg, sp.Pol, 0, 0); err == nil {
			t.Fatalf("corrupted byte at %d not rejected", at)
		}
	}
	// Corrupting the stored checksum itself must also fail.
	bad := bytes.Clone(data)
	bad[len(bad)-1] ^= 0x01
	if _, err := ReadSpace(bytes.NewReader(bad), sp.Alg, sp.Pol, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatal("corrupted trailer checksum not rejected as a checksum mismatch")
	}
}

func TestReadRejectsVersionMismatch(t *testing.T) {
	data, sp := serializedFixture(t)
	bad := bytes.Clone(data)
	binary.LittleEndian.PutUint16(bad[4:6], SerialVersion+1)
	_, err := ReadSpace(bytes.NewReader(bad), sp.Alg, sp.Pol, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected, err=%v", err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	data, sp := serializedFixture(t)
	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, err := ReadSpace(bytes.NewReader(bad), sp.Alg, sp.Pol, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatal("bad magic not rejected")
	}
}

func TestReadRejectsKindMismatch(t *testing.T) {
	data, sp := serializedFixture(t)
	if _, err := ReadSubSpace(bytes.NewReader(data), sp.Alg, sp.Pol, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "kind") {
		t.Fatal("full-space stream accepted as a subspace")
	}
}

func TestReadRejectsWrongInstance(t *testing.T) {
	data, _ := serializedFixture(t) // tokenring n=5
	ring6, err := tokenring.New(6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpace(bytes.NewReader(data), ring6, scheduler.CentralPolicy{}, 0, 0); err == nil {
		t.Fatal("n=5 stream accepted for an n=6 instance")
	}
}

// TestSubSpaceReadAnalysesMatch pins that a loaded subspace is
// indistinguishable from the built one under the analyses: identical
// reverse CSR and identical decoded configurations.
func TestSubSpaceReadAnalysesMatch(t *testing.T) {
	ring, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.DistributedPolicy{}
	ss, err := BuildFrom(ring, pol, []int64{0, 1, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ss.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSubSpace(bytes.NewReader(buf.Bytes()), ring, pol, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRev, gotRev := ss.Reverse(), got.Reverse()
	if !reflect.DeepEqual(wantRev, gotRev) {
		t.Fatal("reverse CSR differs between built and loaded subspace")
	}
	for s := 0; s < ss.NumStates(); s++ {
		if !ss.Config(s).Equal(got.Config(s)) {
			t.Fatalf("Config(%d) differs", s)
		}
	}
}
