// On-disk serialization of explored transition systems. A Space or
// SubSpace is, at rest, four flat arrays (the CSR triple off/succ/prob plus
// the legitimacy vector) — and, for a SubSpace, the Globals() vector that
// ties local ids back to the mixed-radix index range. WriteTo streams them
// as a versioned little-endian binary: a fixed header (magic, format
// version, kind, dimensions), length-prefixed sections in a fixed order,
// and a trailing checksum of everything before it. ReadFrom is the exact
// inverse and rejects anything it cannot trust: wrong magic or version,
// kind mismatch, dimension or section-length inconsistencies, truncation,
// and checksum failures.
//
// Format v2 lays every section payload out on an 8-byte boundary (the
// header, counts and int64/float64 payloads are naturally 8-wide; the succ
// and legit payloads are zero-padded up to it) so that the zero-copy
// mapped loader (mapped.go) can alias the int64/float64/int32 sections of
// a page-aligned mmap directly via unsafe.Slice. Readers reject nonzero
// padding and spare legitimacy bits, keeping the byte stream a *bijection*
// of the explored arrays: an accepted stream re-serializes bit-identically.
// The checksum is CRC-32C (Castagnoli), hardware-accelerated on the hosts
// that matter — an order of magnitude faster than the CRC-64 of format v1,
// which would otherwise dominate the mapped warm-load path — stored as the
// low 32 bits of the 8-byte little-endian trailer.
//
// The format stores only what exploration computed — never the algorithm
// or policy, which are pure code. A reader therefore binds the arrays to
// (algorithm, policy) objects supplied by the caller and validates the
// dimensions against the algorithm's own encoder, so a loaded system is
// indistinguishable from a freshly built one (bit-equal arrays, identical
// analyses). Cache keying — deciding *which* file belongs to which
// (algorithm, instance, policy, seed set) — lives one layer up, in
// internal/spacecache.
package statespace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// SerialVersion is the on-disk format version written by WriteTo and
// required by ReadFrom. Bump it on any incompatible layout change; stale
// cache files then fail the version gate and are rebuilt. Version 2
// introduced 8-byte section alignment and the CRC-32C trailer.
const SerialVersion = 2

// serialMagic opens every serialized system ("WSSC": weakstab space cache).
var serialMagic = [4]byte{'W', 'S', 'S', 'C'}

// Kind discriminates the two transition-system layouts in the header.
const (
	kindSpace    = 0 // full index range: States == Enc.Total()
	kindSubSpace = 1 // frontier subspace: + Globals section
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// serialChunk is the element count encoded per buffered write/read. 8 KiB
// buffers keep the loops in cache while amortizing Write/Read calls.
const serialChunk = 1 << 10

// crcWriter counts and checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}

// crcReader counts and checksums everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (cr *crcReader) full(p []byte) error {
	n, err := io.ReadFull(cr.r, p)
	cr.crc = crc32.Update(cr.crc, crcTable, p[:n])
	cr.n += int64(n)
	return err
}

// WriteTo implements io.WriterTo: it streams the space in the versioned
// binary cache format. The byte stream is a pure function of the explored
// arrays (worker counts, cached reverse views and the algorithm/policy
// objects are not part of it).
func (sp *Space) WriteTo(w io.Writer) (int64, error) {
	return writeSystem(w, kindSpace, sp.Enc.Total(), int64(sp.States),
		sp.off, sp.succ, sp.prob, sp.Legit, nil)
}

// WriteTo implements io.WriterTo for a frontier-explored subspace: the
// Space layout plus the Globals section mapping local ids to mixed-radix
// indexes.
func (ss *SubSpace) WriteTo(w io.Writer) (int64, error) {
	return writeSystem(w, kindSubSpace, ss.Enc.Total(), int64(ss.States),
		ss.off, ss.succ, ss.prob, ss.Legit, ss.Globals())
}

func writeSystem(w io.Writer, kind byte, total, states int64,
	off []int64, succ []int32, prob []float64, legit []bool, globals []int64) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}

	var hdr [32]byte
	copy(hdr[0:4], serialMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], SerialVersion)
	hdr[6] = kind
	hdr[7] = 0 // reserved
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(states))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(succ)))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(total))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}

	if err := writeI64s(cw, off); err != nil {
		return cw.n, err
	}
	if err := writeI32s(cw, succ); err != nil {
		return cw.n, err
	}
	if err := writeF64s(cw, prob); err != nil {
		return cw.n, err
	}
	if err := writeBools(cw, legit); err != nil {
		return cw.n, err
	}
	if kind == kindSubSpace {
		if err := writeI64s(cw, globals); err != nil {
			return cw.n, err
		}
	}

	// Trailer: CRC-32C of everything above in the low 32 bits of an 8-byte
	// word (so the total file length stays 8-aligned), written outside the
	// checksum.
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], uint64(cw.crc))
	if _, err := bw.Write(sum[:]); err != nil {
		return cw.n, err
	}
	return cw.n + 8, bw.Flush()
}

func writeCount(cw *crcWriter, n int) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	_, err := cw.Write(b[:])
	return err
}

// pad8 returns the number of zero bytes that pad a payload of the given
// size to the next 8-byte boundary.
func pad8(size int64) int64 { return -size & 7 }

// writePad zero-pads a section payload of size bytes to the next 8-byte
// boundary, keeping the following section — and with it every int64 and
// float64 payload of the stream — 8-aligned for the zero-copy mapped
// loader.
func writePad(cw *crcWriter, size int64) error {
	pad := pad8(size)
	if pad == 0 {
		return nil
	}
	var zeros [7]byte
	_, err := cw.Write(zeros[:pad])
	return err
}

func writeI64s(cw *crcWriter, v []int64) error {
	if err := writeCount(cw, len(v)); err != nil {
		return err
	}
	var buf [serialChunk * 8]byte
	for len(v) > 0 {
		c := min(len(v), serialChunk)
		for i, x := range v[:c] {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(x))
		}
		if _, err := cw.Write(buf[:c*8]); err != nil {
			return err
		}
		v = v[c:]
	}
	return nil
}

func writeI32s(cw *crcWriter, v []int32) error {
	if err := writeCount(cw, len(v)); err != nil {
		return err
	}
	var buf [serialChunk * 4]byte
	n := len(v)
	for len(v) > 0 {
		c := min(len(v), serialChunk)
		for i, x := range v[:c] {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(x))
		}
		if _, err := cw.Write(buf[:c*4]); err != nil {
			return err
		}
		v = v[c:]
	}
	return writePad(cw, int64(n)*4)
}

func writeF64s(cw *crcWriter, v []float64) error {
	if err := writeCount(cw, len(v)); err != nil {
		return err
	}
	var buf [serialChunk * 8]byte
	for len(v) > 0 {
		c := min(len(v), serialChunk)
		for i, x := range v[:c] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(x))
		}
		if _, err := cw.Write(buf[:c*8]); err != nil {
			return err
		}
		v = v[c:]
	}
	return nil
}

// writeBools bit-packs the legitimacy vector, eight states per byte, LSB
// first, spare bits of the final byte zero.
func writeBools(cw *crcWriter, v []bool) error {
	if err := writeCount(cw, len(v)); err != nil {
		return err
	}
	var buf [serialChunk]byte
	n := len(v)
	for len(v) > 0 {
		c := min(len(v), serialChunk*8)
		packed := buf[:(c+7)/8]
		clear(packed)
		for i, b := range v[:c] {
			if b {
				packed[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := cw.Write(packed); err != nil {
			return err
		}
		v = v[c:]
	}
	return writePad(cw, (int64(n)+7)/8)
}

// serialHeader is the decoded fixed header of a serialized system.
type serialHeader struct {
	kind   byte
	states int64
	edges  int64
	total  int64
}

// parseHeader decodes and validates the fixed 32-byte header — the shared
// front door of the streaming (readHeader) and mapped (mapped.go) readers.
func parseHeader(hdr [32]byte, wantKind byte) (serialHeader, error) {
	if [4]byte(hdr[0:4]) != serialMagic {
		return serialHeader{}, fmt.Errorf("statespace: bad magic %q (not a serialized space)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != SerialVersion {
		return serialHeader{}, fmt.Errorf("statespace: format version %d, want %d", v, SerialVersion)
	}
	h := serialHeader{
		kind:   hdr[6],
		states: int64(binary.LittleEndian.Uint64(hdr[8:16])),
		edges:  int64(binary.LittleEndian.Uint64(hdr[16:24])),
		total:  int64(binary.LittleEndian.Uint64(hdr[24:32])),
	}
	if h.kind != wantKind {
		return serialHeader{}, fmt.Errorf("statespace: serialized kind %d, want %d (full space vs subspace mismatch)", h.kind, wantKind)
	}
	// Plausibility bounds: states fit the int32 id range, and a merged CSR
	// can never hold more than states² distinct transitions (the section
	// readers additionally grow their arrays incrementally, so even a
	// header that lies within these bounds cannot force an allocation
	// larger than the bytes actually present in the stream).
	if h.states < 0 || h.states > math.MaxInt32 || h.edges < 0 || h.edges > h.states*h.states || h.total < h.states {
		return serialHeader{}, fmt.Errorf("statespace: implausible dimensions (states=%d edges=%d total=%d)", h.states, h.edges, h.total)
	}
	return h, nil
}

func readHeader(cr *crcReader, wantKind byte) (serialHeader, error) {
	var hdr [32]byte
	if err := cr.full(hdr[:]); err != nil {
		return serialHeader{}, fmt.Errorf("statespace: reading header: %w", err)
	}
	return parseHeader(hdr, wantKind)
}

func readCount(cr *crcReader, want int64, section string) error {
	var b [8]byte
	if err := cr.full(b[:]); err != nil {
		return fmt.Errorf("statespace: reading %s length: %w", section, err)
	}
	if got := int64(binary.LittleEndian.Uint64(b[:])); got != want {
		return fmt.Errorf("statespace: %s section has %d entries, want %d", section, got, want)
	}
	return nil
}

// readPad consumes the zero padding behind a section payload of size
// bytes, rejecting nonzero bytes — padding carries no information, so an
// accepted stream must re-serialize bit-identically.
func readPad(cr *crcReader, size int64, section string) error {
	pad := pad8(size)
	if pad == 0 {
		return nil
	}
	var b [7]byte
	if err := cr.full(b[:pad]); err != nil {
		return fmt.Errorf("statespace: reading %s padding: %w", section, err)
	}
	for _, x := range b[:pad] {
		if x != 0 {
			return fmt.Errorf("statespace: nonzero %s section padding", section)
		}
	}
	return nil
}

// serialPrealloc caps the element count a section reader allocates before
// any payload byte has been read. Sections at most this long (the common
// case by orders of magnitude) get one exact allocation; longer ones grow
// by append as bytes actually arrive — so a corrupt or hostile header
// claiming a gigantic section cannot force more than ~64 MB of allocation
// before the stream runs dry and the read fails.
const serialPrealloc = 1 << 23

func readI64s(cr *crcReader, n int64, section string) ([]int64, error) {
	if err := readCount(cr, n, section); err != nil {
		return nil, err
	}
	out := make([]int64, 0, min(n, serialPrealloc))
	var buf [serialChunk * 8]byte
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), serialChunk)
		if err := cr.full(buf[:c*8]); err != nil {
			return nil, fmt.Errorf("statespace: reading %s: %w", section, err)
		}
		for i := int64(0); i < c; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out, nil
}

func readI32s(cr *crcReader, n int64, section string) ([]int32, error) {
	if err := readCount(cr, n, section); err != nil {
		return nil, err
	}
	out := make([]int32, 0, min(n, serialPrealloc*2))
	var buf [serialChunk * 4]byte
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), serialChunk)
		if err := cr.full(buf[:c*4]); err != nil {
			return nil, fmt.Errorf("statespace: reading %s: %w", section, err)
		}
		for i := int64(0); i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i*4:])))
		}
	}
	if err := readPad(cr, n*4, section); err != nil {
		return nil, err
	}
	return out, nil
}

func readF64s(cr *crcReader, n int64, section string) ([]float64, error) {
	if err := readCount(cr, n, section); err != nil {
		return nil, err
	}
	out := make([]float64, 0, min(n, serialPrealloc))
	var buf [serialChunk * 8]byte
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), serialChunk)
		if err := cr.full(buf[:c*8]); err != nil {
			return nil, fmt.Errorf("statespace: reading %s: %w", section, err)
		}
		for i := int64(0); i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return out, nil
}

func readBools(cr *crcReader, n int64, section string) ([]bool, error) {
	if err := readCount(cr, n, section); err != nil {
		return nil, err
	}
	out := make([]bool, 0, min(n, serialPrealloc*8))
	var buf [serialChunk]byte
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), serialChunk*8)
		nb := (c + 7) / 8
		if err := cr.full(buf[:nb]); err != nil {
			return nil, fmt.Errorf("statespace: reading %s: %w", section, err)
		}
		for i := int64(0); i < c; i++ {
			out = append(out, buf[i/8]&(1<<(i%8)) != 0)
		}
		// Spare bits beyond the final element carry no information; reject
		// nonzero ones so accepted streams stay bijective with the arrays.
		if c%8 != 0 && buf[nb-1]>>(c%8) != 0 {
			return nil, fmt.Errorf("statespace: nonzero spare bits in %s section", section)
		}
	}
	if err := readPad(cr, (n+7)/8, section); err != nil {
		return nil, err
	}
	return out, nil
}

// unpackBools decodes a bit-packed section payload (LSB first) into a
// fresh bool slice of n elements, rejecting nonzero spare bits in the
// final byte — the mapped loader's equivalent of readBools' decode step.
func unpackBools(packed []byte, n int64) ([]bool, error) {
	out := make([]bool, n)
	// Whole bytes expand through a precomputed 8-bool pattern per byte
	// value — one table copy instead of eight shift-and-test iterations.
	for i := int64(0); i+1 <= n/8; i++ {
		copy(out[i*8:i*8+8], boolPatterns[packed[i]][:])
	}
	for i := n - n%8; i < n; i++ {
		out[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	if n%8 != 0 && packed[(n-1)/8]>>(n%8) != 0 {
		return nil, fmt.Errorf("statespace: nonzero spare bits in legit section")
	}
	return out, nil
}

// boolPatterns[b] is the 8 bools packed into byte value b, LSB first.
var boolPatterns = func() (t [256][8]bool) {
	for b := range t {
		for i := 0; i < 8; i++ {
			t[b][i] = b&(1<<i) != 0
		}
	}
	return
}()

// validateOffsets checks the CSR row-offset invariants shared by the
// streaming and mapped readers: exactly states+1 entries spanning
// [0, edges] monotonically.
func validateOffsets(states, edges int64, off []int64) error {
	if int64(len(off)) != states+1 {
		return fmt.Errorf("statespace: off section has %d entries for %d states", len(off), states)
	}
	if off[0] != 0 || off[states] != edges {
		return fmt.Errorf("statespace: CSR offsets span [%d,%d], want [0,%d]", off[0], off[states], edges)
	}
	for s := int64(0); s < states; s++ {
		if off[s] > off[s+1] {
			return fmt.Errorf("statespace: CSR offsets not monotone at state %d", s)
		}
	}
	return nil
}

// validateSucc checks that every successor index lies in [0, states).
func validateSucc(states int64, succ []int32) error {
	if len(succ) == 0 {
		return nil
	}
	// Hot on every load of either path: reduce to the maximum successor as
	// an unsigned value (a negative one wraps huge; states is capped at
	// MaxInt32 by the header check, so one unsigned bound covers both
	// violations), in parallel chunks on large arrays, and rescan for the
	// exact culprit only on failure.
	const grain = 1 << 19
	var m uint32
	if len(succ) >= 2*grain {
		numChunks := (len(succ) + grain - 1) / grain
		maxes := make([]uint32, numChunks)
		ForRanges(len(succ), 0, grain, func(lo, hi int) bool {
			maxes[lo/grain] = maxSucc(succ[lo:hi])
			return true
		})
		for _, x := range maxes {
			m = max(m, x)
		}
	} else {
		m = maxSucc(succ)
	}
	if int64(m) < states {
		return nil
	}
	for _, t := range succ {
		if int64(t) < 0 || int64(t) >= states {
			return fmt.Errorf("statespace: successor %d outside [0,%d)", t, states)
		}
	}
	return fmt.Errorf("statespace: successor outside [0,%d)", states)
}

// maxSucc returns the maximum of succ reinterpreted as uint32s, with four
// independent accumulators for instruction-level parallelism.
func maxSucc(succ []int32) uint32 {
	var m0, m1, m2, m3 uint32
	i := 0
	for ; i+4 <= len(succ); i += 4 {
		m0 = max(m0, uint32(succ[i]))
		m1 = max(m1, uint32(succ[i+1]))
		m2 = max(m2, uint32(succ[i+2]))
		m3 = max(m3, uint32(succ[i+3]))
	}
	for ; i < len(succ); i++ {
		m0 = max(m0, uint32(succ[i]))
	}
	return max(m0, m1, m2, m3)
}

// validateGlobals checks a subspace's Globals section against the header
// it arrived with: exactly one global per state — an explicit
// length-vs-state-count consistency check the section's own length prefix
// cannot vouch for on the mapped path — strictly ascending within the
// instance's [0, total) index range.
func validateGlobals(states, total int64, globals []int64) error {
	if int64(len(globals)) != states {
		return fmt.Errorf("statespace: globals section has %d entries for %d states", len(globals), states)
	}
	prev := int64(-1)
	for _, g := range globals {
		if g <= prev || g >= total {
			return fmt.Errorf("statespace: globals not strictly ascending within [0,%d)", total)
		}
		prev = g
	}
	return nil
}

// readBody reads and validates sections and trailer after the header. The
// returned arrays satisfy the CSR invariants (off monotone from 0 to edges,
// succ within [0, states)).
func readBody(cr *crcReader, br io.Reader, h serialHeader) (off []int64, succ []int32, prob []float64, legit []bool, globals []int64, err error) {
	if off, err = readI64s(cr, h.states+1, "off"); err != nil {
		return
	}
	if succ, err = readI32s(cr, h.edges, "succ"); err != nil {
		return
	}
	if prob, err = readF64s(cr, h.edges, "prob"); err != nil {
		return
	}
	if legit, err = readBools(cr, h.states, "legit"); err != nil {
		return
	}
	if h.kind == kindSubSpace {
		if globals, err = readI64s(cr, h.states, "globals"); err != nil {
			return
		}
	}

	// Trailer: the stored CRC (not itself checksummed) must match the
	// running one. Checked before the structural validation below so a
	// corrupted file reports corruption, not a confusing shape error.
	want := cr.crc
	var sum [8]byte
	if _, err = io.ReadFull(br, sum[:]); err != nil {
		err = fmt.Errorf("statespace: reading checksum: %w", err)
		return
	}
	if got := binary.LittleEndian.Uint64(sum[:]); got != uint64(want) {
		err = fmt.Errorf("statespace: checksum mismatch (file %#x, computed %#x): corrupted cache file", got, want)
		return
	}

	if err = validateOffsets(h.states, h.edges, off); err != nil {
		return
	}
	if err = validateSucc(h.states, succ); err != nil {
		return
	}
	if h.kind == kindSubSpace {
		err = validateGlobals(h.states, h.total, globals)
	}
	return
}

// ReadFrom implements io.ReaderFrom: it replaces sp's explored arrays with
// a stream written by (*Space).WriteTo. The receiver must already be bound
// to its algorithm, policy and encoder (Alg, Pol, Enc non-nil — see
// ReadSpace for the usual entry point); the stream's dimensions are
// validated against the encoder, so a file from a different instance is
// rejected even before cache-key hygiene.
func (sp *Space) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	cr := &crcReader{r: br}
	h, err := readHeader(cr, kindSpace)
	if err != nil {
		return cr.n, err
	}
	if h.total != sp.Enc.Total() || h.states != sp.Enc.Total() {
		return cr.n, fmt.Errorf("statespace: serialized space has %d of %d configurations, want the full %d of %s",
			h.states, h.total, sp.Enc.Total(), sp.Alg.Name())
	}
	off, succ, prob, legit, _, err := readBody(cr, br, h)
	if err != nil {
		return cr.n + 8, err
	}
	// The replaced arrays may have aliased a mapping; the receiver now owns
	// fresh decoded arrays, so drop (and close) it.
	sp.detachMapping()
	sp.States = int(h.states)
	sp.Legit = legit
	sp.off, sp.succ, sp.prob = off, succ, prob
	// The forward CSR changed, so any reverse view cached on this receiver
	// is stale: reset it so the next Reverse() rebuilds from the loaded
	// arrays. (ReadFrom must not run concurrently with any use of sp.)
	sp.revOnce = sync.Once{}
	sp.rev = Reverse{}
	return cr.n + 8, nil
}

// ReadFrom implements io.ReaderFrom for a subspace stream written by
// (*SubSpace).WriteTo. The receiver must already be bound to its algorithm,
// policy and encoder; the dedup table is rebuilt from the Globals section
// (whose canonical ascending order doubles as the local-id order, exactly
// as BuildFrom leaves it).
func (ss *SubSpace) ReadFrom(r io.Reader) (int64, error) {
	return ss.readFromCapped(r, IndexLimit)
}

// readFromCapped is ReadFrom with a state cap checked right after the
// header, before any section is materialized — so a caller bounding memory
// with Options.MaxStates never decodes an oversized cached subspace only
// to reject it.
func (ss *SubSpace) readFromCapped(r io.Reader, maxStates int64) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	cr := &crcReader{r: br}
	h, err := readHeader(cr, kindSubSpace)
	if err != nil {
		return cr.n, err
	}
	if h.states > maxStates {
		return cr.n, fmt.Errorf("statespace: serialized subspace has %d states, beyond the %d-state cap", h.states, maxStates)
	}
	if h.total != ss.Enc.Total() {
		return cr.n, fmt.Errorf("statespace: serialized subspace lives in a %d-configuration range, want %d for %s",
			h.total, ss.Enc.Total(), ss.Alg.Name())
	}
	off, succ, prob, legit, globals, err := readBody(cr, br, h)
	if err != nil {
		return cr.n + 8, err
	}
	ss.detachMapping()
	ss.States = int(h.states)
	ss.Legit = legit
	ss.off, ss.succ, ss.prob = off, succ, prob
	// The Globals section was validated strictly ascending, and a loaded
	// subspace never grows: the sealed binary-search table avoids both the
	// dense O(range) array and the per-entry hash insertion of a growable
	// dedup (a Builder re-adopting this subspace builds its own).
	ss.table = NewSortedDedup(globals)
	// Reset the cached reverse view: it described the replaced CSR.
	ss.revOnce = sync.Once{}
	ss.rev = Reverse{}
	return cr.n + 8, nil
}

// ReadSpace reads a full space serialized by (*Space).WriteTo and binds it
// to the given algorithm and policy (which the format deliberately does not
// store — they are code, not data). workers sizes the analysis pools of the
// loaded space (0 = NumCPU) and maxStates caps it exactly as Options.
// MaxStates caps a fresh Build (0 = DefaultMaxStates) — a full space always
// spans the whole index range, so the cap is checked against the encoder
// before a single byte is read.
func ReadSpace(r io.Reader, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64) (*Space, error) {
	enc, err := protocol.NewEncoder(a, 0)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	if enc.Total() > math.MaxInt32 {
		return nil, fmt.Errorf("statespace: %d configurations exceed the int32 index range", enc.Total())
	}
	if enc.Total() > StateCap(maxStates) {
		return nil, fmt.Errorf("statespace: %d configurations exceed the %d-state cap", enc.Total(), StateCap(maxStates))
	}
	sp := &Space{Alg: a, Pol: pol, Enc: enc, Workers: resolveWorkers(workers, int(enc.Total()))}
	if _, err := sp.ReadFrom(r); err != nil {
		return nil, err
	}
	return sp, nil
}

// ReadSubSpace reads a subspace serialized by (*SubSpace).WriteTo and binds
// it to the given algorithm and policy. workers sizes the analysis pools of
// the loaded subspace (0 = NumCPU) and maxStates caps its state count
// exactly as Options.MaxStates caps a fresh BuildFrom (0 =
// DefaultMaxStates), rejected at the header before the arrays are decoded.
func ReadSubSpace(r io.Reader, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64) (*SubSpace, error) {
	enc, err := protocol.NewEncoder(a, 0)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	ss := &SubSpace{Alg: a, Pol: pol, Enc: enc, Workers: resolveWorkers(workers, math.MaxInt)}
	if _, err := ss.readFromCapped(r, StateCap(maxStates)); err != nil {
		return nil, err
	}
	return ss, nil
}
