package statespace

// SCC computes the strongly connected components of the subgraph of the
// forward CSR (off, succ) induced by the states with include[s] true
// (pass nil to include every state), by an iterative Tarjan. It returns
// per-state component ids (-1 for excluded states) and the component
// count. Components come out in reverse topological order of the
// condensation: every cross edge points from a higher id into a lower
// one, so ascending id order is a valid dependency-first solve order.
// Both the checker's fairness analyses (illegitimate subgraph) and the
// Markov hitting-time solver (transient subgraph) condense through this
// one implementation.
func SCC(states int, off []int64, succ []int32, include []bool) ([]int32, int) {
	const none = int32(-1)
	comp := make([]int32, states)
	index := make([]int32, states)
	low := make([]int32, states)
	onStack := make([]bool, states)
	for i := range comp {
		comp[i], index[i] = none, none
	}
	var (
		counter int32
		nextCmp int32
		tstack  []int32
	)
	type frame struct {
		v    int32
		next int
	}
	var stack []frame
	for root := 0; root < states; root++ {
		if (include != nil && !include[root]) || index[root] != none {
			continue
		}
		stack = append(stack[:0], frame{v: int32(root)})
		index[root], low[root] = counter, counter
		counter++
		tstack = append(tstack, int32(root))
		onStack[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succs := succ[off[f.v]:off[f.v+1]]
			recursed := false
			for f.next < len(succs) {
				w := succs[f.next]
				f.next++
				if include != nil && !include[w] {
					continue
				}
				if index[w] == none {
					index[w], low[w] = counter, counter
					counter++
					tstack = append(tstack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w})
					recursed = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if recursed {
				continue
			}
			if f.next >= len(succs) {
				v := f.v
				if low[v] == index[v] {
					for {
						w := tstack[len(tstack)-1]
						tstack = tstack[:len(tstack)-1]
						onStack[w] = false
						comp[w] = nextCmp
						if w == v {
							break
						}
					}
					nextCmp++
				}
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := stack[len(stack)-1].v
					if low[v] < low[p] {
						low[p] = low[v]
					}
				}
			}
		}
	}
	return comp, int(nextCmp)
}
