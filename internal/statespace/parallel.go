package statespace

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForRanges splits [0, total) into contiguous chunks of grain indexes (the
// last chunk may be shorter) and runs fn over them on a pool of workers
// (0 means runtime.NumCPU()). Chunks are claimed dynamically, so uneven
// per-index costs stay balanced. fn returning false cancels the remaining
// unclaimed chunks; a panic in fn is re-raised on the caller after the
// pool drains. This is the index-range splitting the exploration engine
// runs on, shared by the reverse-CSR builder, the reachability frontiers
// and the hitting-time block solver.
func ForRanges(total, workers, grain int, fn func(lo, hi int) bool) {
	if total <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if grain < 1 {
		grain = 1
	}
	numChunks := (total + grain - 1) / grain
	if workers > numChunks {
		workers = numChunks
	}
	if workers == 1 {
		for lo := 0; lo < total; lo += grain {
			if !fn(lo, min(lo+grain, total)) {
				return
			}
		}
		return
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stopped.Store(true)
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for !stopped.Load() {
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				lo := c * grain
				if !fn(lo, min(lo+grain, total)) {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
