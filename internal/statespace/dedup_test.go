package statespace

import (
	"sync"
	"testing"
)

// dedupTables returns both implementations: the dense visited array and
// the sharded table (forced by a range just past the dense limit).
func dedupTables() map[string]*Dedup {
	return map[string]*Dedup{
		"dense":   NewDedup(1 << 10),
		"sharded": NewDedup(DenseDedupLimit + 1),
	}
}

func TestDedupAddLookup(t *testing.T) {
	for name, d := range dedupTables() {
		globals := []int64{512, 0, 33, 512, 1023, 33, 7}
		wantIDs := []int32{0, 1, 2, 0, 3, 2, 4}
		for i, g := range globals {
			if id := d.Add(g); id != wantIDs[i] {
				t.Fatalf("%s: Add(%d) = %d, want %d", name, g, id, wantIDs[i])
			}
		}
		if d.Len() != 5 {
			t.Fatalf("%s: Len = %d, want 5", name, d.Len())
		}
		if got := d.Globals(); got[0] != 512 || got[4] != 7 {
			t.Fatalf("%s: globals out of insertion order: %v", name, got)
		}
		if d.Lookup(99) != -1 {
			t.Fatalf("%s: Lookup of absent global succeeded", name)
		}
		if d.Lookup(1023) != 3 {
			t.Fatalf("%s: Lookup(1023) = %d, want 3", name, d.Lookup(1023))
		}
	}
}

func TestDedupRenumber(t *testing.T) {
	for name, d := range dedupTables() {
		for _, g := range []int64{512, 0, 33} {
			d.Add(g)
		}
		// Renumber into ascending-global order: 0, 33, 512.
		d.Renumber([]int32{1, 2, 0})
		want := []int64{0, 33, 512}
		for i, g := range want {
			if d.Globals()[i] != g {
				t.Fatalf("%s: Globals()[%d] = %d, want %d", name, i, d.Globals()[i], g)
			}
			if d.Lookup(g) != int32(i) {
				t.Fatalf("%s: Lookup(%d) = %d, want %d", name, g, d.Lookup(g), i)
			}
		}
	}
}

// TestDedupConcurrentLookup exercises the read-only phase contract: many
// goroutines may Lookup while no Add runs (run with -race).
func TestDedupConcurrentLookup(t *testing.T) {
	for name, d := range dedupTables() {
		for g := int64(0); g < 100; g++ {
			d.Add(g * 7)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for g := int64(0); g < 700; g++ {
					want := int32(-1)
					if g%7 == 0 {
						want = int32(g / 7)
					}
					if got := d.Lookup(g); got != want {
						t.Errorf("%s: concurrent Lookup(%d) = %d, want %d", name, g, got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
