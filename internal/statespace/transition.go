package statespace

import (
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// TransitionSystem is the analysis-facing contract shared by the
// full-index-range Space and the frontier-explored SubSpace: a weighted CSR
// graph over dense state indexes with a legitimacy vector, a cached
// predecessor view, and configuration decoding. The checker's closure,
// convergence and lasso passes, the Markov chain (markov.FromSpace) and the
// core decision procedure all run against this interface, so every analysis
// is subspace-native: it operates on whatever state indexing the underlying
// system uses (global mixed-radix indexes for Space, discovery-order local
// indexes for SubSpace) without knowing which.
type TransitionSystem interface {
	// Algorithm returns the explored algorithm.
	Algorithm() protocol.Algorithm
	// Policy returns the scheduler policy the system was explored under.
	Policy() scheduler.Policy
	// NumStates returns the number of states of the system.
	NumStates() int
	// TotalConfigs returns the size of the full configuration space the
	// system lives in. Equal to NumStates for a Space; for a SubSpace,
	// NumStates/TotalConfigs is the explored (reachable) fraction.
	TotalConfigs() int64
	// IsLegit reports whether state s is legitimate.
	IsLegit(s int) bool
	// LegitSet returns the per-state legitimacy vector. The slice aliases
	// the system; callers must not modify it.
	LegitSet() []bool
	// PoolWorkers returns the worker-pool size analyses over this system
	// should run on (the resolved exploration pool size).
	PoolWorkers() int
	// Succ returns the successor state indexes of s, deduplicated and
	// sorted ascending. The slice aliases the system.
	Succ(s int) []int32
	// Prob returns the transition probabilities aligned with Succ(s). The
	// slice aliases the system.
	Prob(s int) []float64
	// IsTerminal reports whether state s has no successors.
	IsTerminal(s int) bool
	// Edges returns the total number of stored transitions.
	Edges() int64
	// CSR exposes the raw forward CSR triple without copying. Callers must
	// not modify the slices.
	CSR() (off []int64, succ []int32, prob []float64)
	// Reverse returns the predecessor view, built on first use and cached.
	Reverse() Reverse
	// Config decodes state index s into a fresh configuration.
	Config(s int) protocol.Configuration
	// ConfigInto decodes state index s into dst (allocating only when dst
	// is nil or too short) and returns it, so sweeping analyses reuse one
	// decode buffer.
	ConfigInto(s int, dst protocol.Configuration) protocol.Configuration
	// StateOf returns the state index of cfg within the system. ok is
	// false when cfg is not part of the system — possible only for a
	// SubSpace (a Space contains every configuration of the index range).
	StateOf(cfg protocol.Configuration) (int32, bool)
}

var (
	_ TransitionSystem = (*Space)(nil)
	_ TransitionSystem = (*SubSpace)(nil)
)

// Algorithm implements TransitionSystem.
func (sp *Space) Algorithm() protocol.Algorithm { return sp.Alg }

// Policy implements TransitionSystem.
func (sp *Space) Policy() scheduler.Policy { return sp.Pol }

// NumStates implements TransitionSystem.
func (sp *Space) NumStates() int { return sp.States }

// TotalConfigs implements TransitionSystem: a Space always covers the full
// index range.
func (sp *Space) TotalConfigs() int64 { return sp.Enc.Total() }

// IsLegit implements TransitionSystem.
func (sp *Space) IsLegit(s int) bool { return sp.Legit[s] }

// LegitSet implements TransitionSystem.
func (sp *Space) LegitSet() []bool { return sp.Legit }

// PoolWorkers implements TransitionSystem.
func (sp *Space) PoolWorkers() int { return sp.Workers }

// ConfigInto implements TransitionSystem.
func (sp *Space) ConfigInto(s int, dst protocol.Configuration) protocol.Configuration {
	return sp.Enc.Decode(int64(s), dst)
}

// StateOf implements TransitionSystem: every in-domain configuration is a
// state of the full space.
func (sp *Space) StateOf(cfg protocol.Configuration) (int32, bool) {
	return int32(sp.Enc.Encode(cfg)), true
}
