package statespace

import (
	"strings"
	"testing"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/scheduler"
)

// TestBuilderWavesMatchBuildFrom pins the resumable engine's core
// property: extending a Builder with seed waves yields, at every seal,
// exactly the subspace BuildFrom produces from the union of the waves so
// far — arrays bit-equal, across worker counts and policies.
func TestBuilderWavesMatchBuildFrom(t *testing.T) {
	a, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	waves := [][]int64{
		{0, 5},
		{1, 2, 5}, // overlaps wave 1
		{20, 17},
	}
	for _, pol := range []scheduler.Policy{scheduler.CentralPolicy{}, scheduler.SynchronousPolicy{}} {
		for _, workers := range []int{1, 4} {
			opt := Options{Workers: workers}
			b, err := NewBuilder(a, pol, opt)
			if err != nil {
				t.Fatal(err)
			}
			var union []int64
			for w, wave := range waves {
				if err := b.Extend(wave); err != nil {
					t.Fatal(err)
				}
				union = append(union, wave...)
				got := b.Seal()
				want, err := BuildFrom(a, pol, union, opt)
				if err != nil {
					t.Fatal(err)
				}
				assertSubSpaceEqual(t, want, got)
				if b.Len() != got.NumStates() {
					t.Fatalf("wave %d: builder holds %d states, sealed %d", w, b.Len(), got.NumStates())
				}
			}
		}
	}
}

// TestBuilderSealIsolation pins the snapshot contract: a sealed subspace
// is untouched by later growth of the builder.
func TestBuilderSealIsolation(t *testing.T) {
	a, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.CentralPolicy{}
	b, err := NewBuilder(a, pol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Extend([]int64{0}); err != nil {
		t.Fatal(err)
	}
	first := b.Seal()
	want, err := BuildFrom(a, pol, []int64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Extend([]int64{7, 21, 30}); err != nil {
		t.Fatal(err)
	}
	_ = b.Seal()
	// The first snapshot still equals the from-scratch build of its seeds.
	assertSubSpaceEqual(t, want, first)
	// And it still answers queries through its own table.
	if _, ok := first.StateOf(want.Config(0)); !ok {
		t.Fatal("sealed snapshot lost its state lookup after builder growth")
	}
}

// TestBuilderResumeFrom pins ResumeFrom: a builder adopted from a sealed
// subspace continues bit-identically to one that never stopped, and the
// adopted subspace is never mutated.
func TestBuilderResumeFrom(t *testing.T) {
	a, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.DistributedPolicy{}
	base, err := BuildFrom(a, pol, []int64{0, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildFrom(a, pol, []int64{0, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ResumeFrom(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Len() != base.NumStates() {
		t.Fatalf("resumed builder holds %d states, want %d", rb.Len(), base.NumStates())
	}
	if err := rb.Extend([]int64{11, 29}); err != nil {
		t.Fatal(err)
	}
	got := rb.Seal()
	want, err := BuildFrom(a, pol, []int64{0, 3, 11, 29}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSubSpaceEqual(t, want, got)
	// The adopted subspace must be untouched by the growth.
	assertSubSpaceEqual(t, ref, base)
}

// TestBuilderCapSemantics pins the inclusive cap across waves: the cap
// counts every discovered state since NewBuilder, not per Extend.
func TestBuilderCapSemantics(t *testing.T) {
	a, err := tokenring.New(6)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.CentralPolicy{}
	full, err := BuildFrom(a, pol, []int64{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(full.NumStates())
	// Exactly n states: builds.
	b, err := NewBuilder(a, pol, Options{MaxStates: n})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Extend([]int64{0}); err != nil {
		t.Fatalf("cap of exactly %d states must admit the closure: %v", n, err)
	}
	// One fewer: the exploration fails with the cap error.
	b, err = NewBuilder(a, pol, Options{MaxStates: n - 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Extend([]int64{0}); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("cap of %d states on a %d-state closure: err=%v", n-1, n, err)
	}
	// ResumeFrom under a too-small cap is rejected up front.
	if _, err := ResumeFrom(full, Options{MaxStates: n - 1}); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("resume of a %d-state subspace under a %d-state cap: err=%v", n, n-1, err)
	}
	// Sealing an empty builder yields nil.
	b, err = NewBuilder(a, pol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss := b.Seal(); ss != nil {
		t.Fatalf("empty builder sealed to %d states, want nil", ss.NumStates())
	}
}
