// Zero-copy loading of serialized transition systems. The streaming
// readers in serial.go decode every section into fresh heap arrays — an
// O(bytes) copy on every warm load. The mapped loader takes the opposite
// deal: given the file's bytes as one contiguous buffer (in practice a
// read-only mmap established by internal/spacecache), it validates the
// header, section counts, padding and CRC-32C once, then aliases the
// int64/int32/float64 section payloads in place via unsafe.Slice — format
// v2 guarantees every payload sits on an 8-byte boundary relative to the
// (page-aligned) buffer start, so the aliased slices are well-aligned by
// construction, and the loader verifies it anyway. Only the bit-packed
// legitimacy vector is decoded (it cannot alias []bool; at one bit per
// state it is the cheapest section by far). The result is a Space or
// SubSpace whose CSR arrays are backed by the page cache: an analysis
// touches only the pages it actually reads.
//
// The byte order of the format is little-endian; on a big-endian host, or
// when the buffer is not 8-byte aligned, MapSpace/MapSubSpace fail with
// ErrNotMappable and the caller falls back to the streaming decode path —
// which produces bit-equal arrays, so the two paths are interchangeable
// everywhere downstream.
//
// Ownership: a mapped system holds a reference-counted mapping. Analyses
// that must not race an unmap pin it with Acquire/Release; Close is
// idempotent and defers the actual unmap until the last reference drops.
// Materialize promotes a mapped system to ordinary heap arrays for callers
// that outlive the mapping or mutate the arrays (copy-on-write, one copy).
package statespace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"unsafe"

	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
)

// ErrNotMappable reports a buffer that cannot be zero-copy aliased on this
// host — a big-endian machine, or a buffer whose base address is not
// 8-byte aligned (mmap always is; ad-hoc sub-slices may not be). It marks
// structural unfitness, not corruption: the same bytes remain loadable
// through the streaming decode path.
var ErrNotMappable = errors.New("statespace: buffer not zero-copy mappable on this host")

// hostLittleEndian reports whether the running host stores integers in the
// format's byte order, decided once at startup.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mapping tracks the lifetime of the externally owned buffer a mapped
// system aliases. Acquire pins the buffer for the duration of an analysis;
// Close marks the mapping dead and unmaps as soon as the last pin drops
// (immediately, when none is held). All methods are safe for concurrent
// use.
type mapping struct {
	mu     sync.Mutex
	refs   int
	closed bool
	unmap  func() error
}

func (m *mapping) acquire() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("statespace: Acquire on a closed mapped system")
	}
	m.refs++
	return nil
}

func (m *mapping) release() error {
	m.mu.Lock()
	if m.refs <= 0 {
		m.mu.Unlock()
		panic("statespace: Release without matching Acquire")
	}
	m.refs--
	var unmap func() error
	if m.closed && m.refs == 0 {
		unmap, m.unmap = m.unmap, nil
	}
	m.mu.Unlock()
	if unmap != nil {
		return unmap()
	}
	return nil
}

func (m *mapping) close() error {
	m.mu.Lock()
	m.closed = true
	var unmap func() error
	if m.refs == 0 {
		unmap, m.unmap = m.unmap, nil
	}
	m.mu.Unlock()
	if unmap != nil {
		return unmap()
	}
	return nil
}

// Mapped reports whether the space's CSR arrays alias an external mapped
// buffer (loaded by MapSpace) rather than ordinary heap memory.
func (sp *Space) Mapped() bool { return sp.mapped != nil }

// Acquire pins the mapped buffer backing the space so a concurrent Close
// cannot unmap it mid-analysis; every Acquire must be paired with a
// Release. On an unmapped space it is a no-op. It fails once the space has
// been closed.
func (sp *Space) Acquire() error {
	if sp.mapped == nil {
		return nil
	}
	return sp.mapped.acquire()
}

// Release undoes one Acquire. The last Release after a Close performs the
// deferred unmap (and returns its error).
func (sp *Space) Release() error {
	if sp.mapped == nil {
		return nil
	}
	return sp.mapped.release()
}

// Close releases the mapped buffer backing the space. It is idempotent and
// safe concurrently with pinned analyses: the unmap is deferred until the
// last Acquire is released. After Close the space's CSR accessors must not
// be used (unpinned) — callers needing the data past Close use Materialize
// first. Close on an unmapped space is a no-op.
func (sp *Space) Close() error {
	if sp.mapped == nil {
		return nil
	}
	return sp.mapped.close()
}

// Materialize promotes a mapped space to ordinary heap arrays (one copy)
// and closes the mapping, so the space outlives the buffer and its arrays
// become safely mutable by owners that need that. It must not run
// concurrently with other users of the space. On an unmapped space it is a
// no-op.
func (sp *Space) Materialize() error {
	if sp.mapped == nil {
		return nil
	}
	sp.off = slices.Clone(sp.off)
	sp.succ = slices.Clone(sp.succ)
	sp.prob = slices.Clone(sp.prob)
	m := sp.mapped
	sp.mapped = nil
	runtime.SetFinalizer(sp, nil)
	return m.close()
}

// detachMapping drops (and closes) the mapping after the receiver's arrays
// have been replaced by decoded ones.
func (sp *Space) detachMapping() {
	if sp.mapped == nil {
		return
	}
	m := sp.mapped
	sp.mapped = nil
	runtime.SetFinalizer(sp, nil)
	m.close()
}

// Mapped reports whether the subspace's CSR and Globals arrays alias an
// external mapped buffer (loaded by MapSubSpace).
func (ss *SubSpace) Mapped() bool { return ss.mapped != nil }

// Acquire pins the mapped buffer backing the subspace; see (*Space).Acquire.
func (ss *SubSpace) Acquire() error {
	if ss.mapped == nil {
		return nil
	}
	return ss.mapped.acquire()
}

// Release undoes one Acquire; see (*Space).Release.
func (ss *SubSpace) Release() error {
	if ss.mapped == nil {
		return nil
	}
	return ss.mapped.release()
}

// Close releases the mapped buffer backing the subspace; see (*Space).Close.
func (ss *SubSpace) Close() error {
	if ss.mapped == nil {
		return nil
	}
	return ss.mapped.close()
}

// Materialize promotes a mapped subspace to ordinary heap arrays (CSR and
// Globals) and closes the mapping; see (*Space).Materialize.
func (ss *SubSpace) Materialize() error {
	if ss.mapped == nil {
		return nil
	}
	ss.off = slices.Clone(ss.off)
	ss.succ = slices.Clone(ss.succ)
	ss.prob = slices.Clone(ss.prob)
	ss.table = NewSortedDedup(slices.Clone(ss.Globals()))
	m := ss.mapped
	ss.mapped = nil
	runtime.SetFinalizer(ss, nil)
	return m.close()
}

func (ss *SubSpace) detachMapping() {
	if ss.mapped == nil {
		return
	}
	m := ss.mapped
	ss.mapped = nil
	runtime.SetFinalizer(ss, nil)
	m.close()
}

// mappedArrays is the outcome of mapSystem: section payloads aliasing the
// buffer (nil when empty) plus the decoded legitimacy vector.
type mappedArrays struct {
	off     []int64
	succ    []int32
	prob    []float64
	legit   []bool
	globals []int64
}

// mapCount verifies the 8-byte length prefix at data[at:] carries the
// header-implied element count — the mapped twin of readCount.
func mapCount(data []byte, at, want int64, section string) error {
	if got := int64(binary.LittleEndian.Uint64(data[at:])); got != want {
		return fmt.Errorf("statespace: %s section has %d entries, want %d", section, got, want)
	}
	return nil
}

// mapPad verifies the zero padding behind a section payload ending at
// data[at:] — the mapped twin of readPad.
func mapPad(data []byte, at, size int64, section string) error {
	for _, x := range data[at : at+pad8(size)] {
		if x != 0 {
			return fmt.Errorf("statespace: nonzero %s section padding", section)
		}
	}
	return nil
}

// aliasI64s returns data[at:] reinterpreted as n int64s without copying.
func aliasI64s(data []byte, at, n int64) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&data[at])
	if uintptr(p)%8 != 0 {
		return nil, ErrNotMappable
	}
	return unsafe.Slice((*int64)(p), n), nil
}

// aliasI32s returns data[at:] reinterpreted as n int32s without copying.
func aliasI32s(data []byte, at, n int64) ([]int32, error) {
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&data[at])
	if uintptr(p)%4 != 0 {
		return nil, ErrNotMappable
	}
	return unsafe.Slice((*int32)(p), n), nil
}

// aliasF64s returns data[at:] reinterpreted as n float64s without copying.
func aliasF64s(data []byte, at, n int64) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&data[at])
	if uintptr(p)%8 != 0 {
		return nil, ErrNotMappable
	}
	return unsafe.Slice((*float64)(p), n), nil
}

// mapSystem validates a format-v2 buffer end to end — header fields,
// section counts, padding, CRC-32C, CSR structure — and returns arrays
// aliasing its sections. It performs every check the streaming reader
// performs (the two paths accept exactly the same byte strings, modulo
// ErrNotMappable), but touches the bytes only twice: once for the
// hardware-assisted checksum, once for validation scans.
//
// With trusted set, the O(bytes) passes — checksum and the array content
// validators — are skipped: the caller vouches that these exact bytes
// already passed a full validation (the spacecache keys that promise on
// the file's inode identity). Layout, counts and alignment are still
// checked, so a trusted load of the wrong-shaped buffer fails cleanly.
func mapSystem(data []byte, wantKind byte, trusted bool) (serialHeader, mappedArrays, error) {
	var arr mappedArrays
	if !hostLittleEndian {
		return serialHeader{}, arr, ErrNotMappable
	}
	if int64(len(data)) < 32 {
		return serialHeader{}, arr, fmt.Errorf("statespace: buffer of %d bytes too short for a serialized space", len(data))
	}
	h, err := parseHeader([32]byte(data[0:32]), wantKind)
	if err != nil {
		return serialHeader{}, arr, err
	}
	// Cheap truncation gate before any layout arithmetic: it also bounds
	// states and edges by the buffer length, so the offset sums below
	// cannot overflow (every term is < 8·len(data)).
	if h.states > int64(len(data))/8 || h.edges > int64(len(data))/4 {
		return serialHeader{}, arr, fmt.Errorf("statespace: buffer of %d bytes truncated for %d states, %d edges", len(data), h.states, h.edges)
	}

	// Section layout. Format v2 makes it a pure function of the header:
	// every count is 8 bytes, every payload zero-padded to an 8-byte
	// boundary.
	offAt := int64(32 + 8)
	offBytes := (h.states + 1) * 8
	succAt := offAt + offBytes + 8
	succBytes := h.edges * 4
	probAt := succAt + succBytes + pad8(succBytes) + 8
	probBytes := h.edges * 8
	legitAt := probAt + probBytes + 8
	legitBytes := (h.states + 7) / 8
	end := legitAt + legitBytes + pad8(legitBytes)
	globAt, globBytes := int64(0), int64(0)
	if h.kind == kindSubSpace {
		globAt = end + 8
		globBytes = h.states * 8
		end = globAt + globBytes
	}
	need := end + 8 // CRC trailer
	if int64(len(data)) < need {
		return serialHeader{}, arr, fmt.Errorf("statespace: buffer of %d bytes truncated for a %d-byte serialized system", len(data), need)
	}

	if err := mapCount(data, offAt-8, h.states+1, "off"); err != nil {
		return serialHeader{}, arr, err
	}
	if err := mapCount(data, succAt-8, h.edges, "succ"); err != nil {
		return serialHeader{}, arr, err
	}
	if err := mapCount(data, probAt-8, h.edges, "prob"); err != nil {
		return serialHeader{}, arr, err
	}
	if err := mapCount(data, legitAt-8, h.states, "legit"); err != nil {
		return serialHeader{}, arr, err
	}
	if h.kind == kindSubSpace {
		if err := mapCount(data, globAt-8, h.states, "globals"); err != nil {
			return serialHeader{}, arr, err
		}
	}

	if !trusted {
		// Integrity before structure, exactly like the streaming reader: a
		// corrupted file reports corruption, not a confusing shape error.
		want := checksumParallel(data[:end])
		if got := binary.LittleEndian.Uint64(data[end:]); got != uint64(want) {
			return serialHeader{}, arr, fmt.Errorf("statespace: checksum mismatch (file %#x, computed %#x): corrupted cache file", got, want)
		}
		if err := mapPad(data, succAt+succBytes, succBytes, "succ"); err != nil {
			return serialHeader{}, arr, err
		}
		if err := mapPad(data, legitAt+legitBytes, legitBytes, "legit"); err != nil {
			return serialHeader{}, arr, err
		}
	}

	if arr.off, err = aliasI64s(data, offAt, h.states+1); err != nil {
		return serialHeader{}, arr, err
	}
	if arr.succ, err = aliasI32s(data, succAt, h.edges); err != nil {
		return serialHeader{}, arr, err
	}
	if arr.prob, err = aliasF64s(data, probAt, h.edges); err != nil {
		return serialHeader{}, arr, err
	}
	if arr.legit, err = unpackBools(data[legitAt:legitAt+legitBytes], h.states); err != nil {
		return serialHeader{}, arr, err
	}
	if h.kind == kindSubSpace {
		if arr.globals, err = aliasI64s(data, globAt, h.states); err != nil {
			return serialHeader{}, arr, err
		}
	}

	if !trusted {
		if err := validateOffsets(h.states, h.edges, arr.off); err != nil {
			return serialHeader{}, arr, err
		}
		if err := validateSucc(h.states, arr.succ); err != nil {
			return serialHeader{}, arr, err
		}
		if h.kind == kindSubSpace {
			if err := validateGlobals(h.states, h.total, arr.globals); err != nil {
				return serialHeader{}, arr, err
			}
		}
	}
	return h, arr, nil
}

// MapSpace interprets data — the complete bytes of a full space serialized
// by (*Space).WriteTo, typically a read-only mmap of a cache file — as a
// transition system whose CSR arrays alias data in place (zero-copy; only
// the bit-packed legitimacy vector is decoded). Validation is equivalent
// to ReadSpace's: the two paths accept the same bytes and produce
// bit-equal arrays. ErrNotMappable (big-endian host, misaligned buffer)
// means the caller should fall back to ReadSpace; any other error means
// the bytes themselves are unusable.
//
// unmap, when non-nil, is invoked exactly once — by Close, the final
// Release after a Close, Materialize, or a GC finalizer safety net — when
// the returned space is done with the buffer. On error, ownership of the
// buffer stays with the caller and unmap is not invoked.
func MapSpace(data []byte, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64, unmap func() error) (*Space, error) {
	return mapSpace(data, a, pol, workers, maxStates, unmap, false)
}

// MapSpaceTrusted is MapSpace minus the O(bytes) integrity passes
// (checksum, padding scans, CSR content validators). The caller asserts
// that these exact bytes already passed a full MapSpace or ReadSpace
// validation and have not changed since — the spacecache keys that
// promise on the backing file's (device, inode, size, mtime) identity,
// which every rewrite path invalidates via rename. Layout, counts and
// alignment are still checked.
func MapSpaceTrusted(data []byte, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64, unmap func() error) (*Space, error) {
	return mapSpace(data, a, pol, workers, maxStates, unmap, true)
}

func mapSpace(data []byte, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64, unmap func() error, trusted bool) (*Space, error) {
	enc, err := protocol.NewEncoder(a, 0)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	if enc.Total() > math.MaxInt32 {
		return nil, fmt.Errorf("statespace: %d configurations exceed the int32 index range", enc.Total())
	}
	if enc.Total() > StateCap(maxStates) {
		return nil, fmt.Errorf("statespace: %d configurations exceed the %d-state cap", enc.Total(), StateCap(maxStates))
	}
	h, arr, err := mapSystem(data, kindSpace, trusted)
	if err != nil {
		return nil, err
	}
	if h.total != enc.Total() || h.states != enc.Total() {
		return nil, fmt.Errorf("statespace: serialized space has %d of %d configurations, want the full %d of %s",
			h.states, h.total, enc.Total(), a.Name())
	}
	sp := &Space{
		Alg:     a,
		Pol:     pol,
		Enc:     enc,
		States:  int(h.states),
		Legit:   arr.legit,
		Workers: resolveWorkers(workers, int(enc.Total())),
		off:     arr.off,
		succ:    arr.succ,
		prob:    arr.prob,
		mapped:  &mapping{unmap: unmap},
	}
	if unmap != nil {
		// Safety net for owners that drop the space without closing it
		// (one-shot experiment paths): reclaim the mapping when the space
		// becomes unreachable. Explicit Close/Materialize clears this.
		runtime.SetFinalizer(sp, func(sp *Space) { sp.Close() })
	}
	return sp, nil
}

// MapSubSpace is MapSpace for a frontier subspace stream written by
// (*SubSpace).WriteTo: the CSR sections and the Globals vector alias data
// in place, and the local-id table is the sealed binary-search view over
// the aliased Globals (no rebuild, no copy). maxStates caps the state
// count exactly as ReadSubSpace does.
func MapSubSpace(data []byte, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64, unmap func() error) (*SubSpace, error) {
	return mapSubSpace(data, a, pol, workers, maxStates, unmap, false)
}

// MapSubSpaceTrusted is MapSubSpace with the same trusted-bytes contract
// as MapSpaceTrusted: skip the O(bytes) integrity passes for a buffer the
// caller has already validated and pinned by file identity.
func MapSubSpaceTrusted(data []byte, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64, unmap func() error) (*SubSpace, error) {
	return mapSubSpace(data, a, pol, workers, maxStates, unmap, true)
}

func mapSubSpace(data []byte, a protocol.Algorithm, pol scheduler.Policy, workers int, maxStates int64, unmap func() error, trusted bool) (*SubSpace, error) {
	enc, err := protocol.NewEncoder(a, 0)
	if err != nil {
		return nil, fmt.Errorf("statespace: %w", err)
	}
	h, arr, err := mapSystem(data, kindSubSpace, trusted)
	if err != nil {
		return nil, err
	}
	if h.states > StateCap(maxStates) {
		return nil, fmt.Errorf("statespace: serialized subspace has %d states, beyond the %d-state cap", h.states, StateCap(maxStates))
	}
	if h.total != enc.Total() {
		return nil, fmt.Errorf("statespace: serialized subspace lives in a %d-configuration range, want %d for %s",
			h.total, enc.Total(), a.Name())
	}
	ss := &SubSpace{
		Alg:     a,
		Pol:     pol,
		Enc:     enc,
		States:  int(h.states),
		Legit:   arr.legit,
		Workers: resolveWorkers(workers, math.MaxInt),
		table:   NewSortedDedup(arr.globals),
		off:     arr.off,
		succ:    arr.succ,
		prob:    arr.prob,
		mapped:  &mapping{unmap: unmap},
	}
	if unmap != nil {
		runtime.SetFinalizer(ss, func(ss *SubSpace) { ss.Close() })
	}
	return ss, nil
}
