package statespace

// Tests of the zero-copy mapped loader: bit-equal parity with the
// streaming decoder, the fallback matrix (misaligned buffers, truncation,
// corruption, count/structure inconsistencies), and the Acquire/Release/
// Close lifecycle — including Close racing in-flight readers, which the
// race-enabled CI job runs under the race detector.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"sync"
	"testing"
	"unsafe"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/scheduler"
)

func testSpaceBytes(t *testing.T) (*Space, *tokenring.Algorithm, []byte) {
	t.Helper()
	a, err := tokenring.New(4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Build(a, scheduler.CentralPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return sp, a, buf.Bytes()
}

func testSubSpaceBytes(t *testing.T) (*SubSpace, *tokenring.Algorithm, []byte) {
	t.Helper()
	a, err := tokenring.New(5)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := BuildFrom(a, scheduler.CentralPolicy{}, []int64{0, 1, 7, 13}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ss.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return ss, a, buf.Bytes()
}

// copyAt returns a copy of b whose base address is ≡ rem (mod 8).
func copyAt(b []byte, rem uintptr) []byte {
	buf := make([]byte, len(b)+8)
	base := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	off := int((rem - base%8 + 8) % 8)
	dst := buf[off : off+len(b)]
	copy(dst, b)
	return dst
}

// refreshCRC rewrites the trailer of a deliberately edited serialization
// so the corruption under test is reached, not masked by the checksum.
func refreshCRC(b []byte) {
	binary.LittleEndian.PutUint64(b[len(b)-8:], uint64(crc32.Checksum(b[:len(b)-8], crcTable)))
}

// TestSerialAlignment pins the format-v2 layout guarantee the mapped
// loader relies on: every section payload offset, and the total length,
// is a multiple of 8.
func TestSerialAlignment(t *testing.T) {
	_, _, data := testSubSpaceBytes(t)
	if len(data)%8 != 0 {
		t.Errorf("serialized length %d not a multiple of 8", len(data))
	}
	h, err := parseHeader([32]byte(data[:32]), kindSubSpace)
	if err != nil {
		t.Fatal(err)
	}
	if h.edges%2 == 0 {
		t.Logf("note: even edge count %d exercises no succ padding", h.edges)
	}
	offAt := int64(40)
	succAt := offAt + (h.states+1)*8 + 8
	probAt := succAt + h.edges*4 + pad8(h.edges*4) + 8
	for _, at := range []int64{offAt, succAt, probAt} {
		if at%8 != 0 {
			t.Errorf("section payload at %d not 8-aligned", at)
		}
	}
}

func TestMapSpaceParity(t *testing.T) {
	sp, a, data := testSpaceBytes(t)
	mapped, err := MapSpace(copyAt(data, 0), a, scheduler.CentralPolicy{}, 1, 0, nil)
	if err != nil {
		t.Fatalf("MapSpace: %v", err)
	}
	if !mapped.Mapped() {
		t.Fatal("MapSpace result not marked mapped")
	}
	decoded, err := ReadSpace(bytes.NewReader(data), a, scheduler.CentralPolicy{}, 1, 0)
	if err != nil {
		t.Fatalf("ReadSpace: %v", err)
	}
	for _, got := range []*Space{mapped, decoded} {
		if got.States != sp.States || !reflect.DeepEqual(got.Legit, sp.Legit) {
			t.Fatalf("loaded space differs in states/legitimacy")
		}
		off, succ, prob := got.CSR()
		wantOff, wantSucc, wantProb := sp.CSR()
		if !reflect.DeepEqual(off, wantOff) || !reflect.DeepEqual(succ, wantSucc) || !reflect.DeepEqual(prob, wantProb) {
			t.Fatalf("loaded CSR differs from built CSR")
		}
	}
	// The mapped system re-serializes to the exact input bytes.
	var out bytes.Buffer
	if _, err := mapped.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("mapped space re-serialization differs from its input")
	}
}

func TestMapSubSpaceParity(t *testing.T) {
	ss, a, data := testSubSpaceBytes(t)
	mapped, err := MapSubSpace(copyAt(data, 0), a, scheduler.CentralPolicy{}, 1, 0, nil)
	if err != nil {
		t.Fatalf("MapSubSpace: %v", err)
	}
	decoded, err := ReadSubSpace(bytes.NewReader(data), a, scheduler.CentralPolicy{}, 1, 0)
	if err != nil {
		t.Fatalf("ReadSubSpace: %v", err)
	}
	for _, got := range []*SubSpace{mapped, decoded} {
		if got.States != ss.States || !reflect.DeepEqual(got.Legit, ss.Legit) {
			t.Fatal("loaded subspace differs in states/legitimacy")
		}
		off, succ, prob := got.CSR()
		wantOff, wantSucc, wantProb := ss.CSR()
		if !reflect.DeepEqual(off, wantOff) || !reflect.DeepEqual(succ, wantSucc) || !reflect.DeepEqual(prob, wantProb) {
			t.Fatal("loaded CSR differs from built CSR")
		}
		if !reflect.DeepEqual(got.Globals(), ss.Globals()) {
			t.Fatal("loaded globals differ")
		}
	}
	// The sealed table binary-searches the aliased globals.
	for s := 0; s < ss.States; s++ {
		if got := mapped.LocalIndex(ss.GlobalIndex(s)); got != int32(s) {
			t.Fatalf("LocalIndex(%d) = %d, want %d", ss.GlobalIndex(s), got, s)
		}
	}
	if mapped.LocalIndex(ss.TotalConfigs()-1) != -1 && ss.LocalIndex(ss.TotalConfigs()-1) == -1 {
		t.Fatal("mapped table found an undiscovered global")
	}
}

// TestMapMisalignedBuffer covers the fallback matrix's misalignment row:
// the same bytes at a non-8-aligned base are refused with ErrNotMappable
// (not corruption) and remain loadable by the decode path.
func TestMapMisalignedBuffer(t *testing.T) {
	_, a, data := testSpaceBytes(t)
	for rem := uintptr(1); rem < 8; rem++ {
		mis := copyAt(data, rem)
		_, err := MapSpace(mis, a, scheduler.CentralPolicy{}, 1, 0, nil)
		if !errors.Is(err, ErrNotMappable) {
			t.Fatalf("base%%8=%d: MapSpace err = %v, want ErrNotMappable", rem, err)
		}
		if _, err := ReadSpace(bytes.NewReader(mis), a, scheduler.CentralPolicy{}, 1, 0); err != nil {
			t.Fatalf("base%%8=%d: decode fallback failed: %v", rem, err)
		}
	}
}

// TestMapTruncatedTail covers truncation behind a valid header: every
// prefix must fail cleanly, never panic, never succeed.
func TestMapTruncatedTail(t *testing.T) {
	_, a, data := testSubSpaceBytes(t)
	for _, n := range []int{0, 16, 32, 40, len(data) / 2, len(data) - 9, len(data) - 8, len(data) - 1} {
		if _, err := MapSubSpace(copyAt(data[:n], 0), a, scheduler.CentralPolicy{}, 1, 0, nil); err == nil {
			t.Fatalf("MapSubSpace accepted a %d-byte prefix of %d bytes", n, len(data))
		}
	}
}

func TestMapCorruptPayload(t *testing.T) {
	_, a, data := testSpaceBytes(t)
	bad := copyAt(data, 0)
	bad[64] ^= 0x40
	_, err := MapSpace(bad, a, scheduler.CentralPolicy{}, 1, 0, nil)
	if err == nil || errors.Is(err, ErrNotMappable) {
		t.Fatalf("corrupted payload: err = %v, want checksum mismatch", err)
	}
}

// TestMapGlobalsConsistency covers the explicit Globals-vs-state-count and
// strict-ascent checks shared by the decode and mapped paths, with the CRC
// refreshed so the structural validation itself is what rejects.
func TestMapGlobalsConsistency(t *testing.T) {
	ss, a, data := testSubSpaceBytes(t)
	globCount := len(data) - 8 - ss.States*8 - 8

	t.Run("count-mismatch", func(t *testing.T) {
		bad := copyAt(data, 0)
		binary.LittleEndian.PutUint64(bad[globCount:], uint64(ss.States-1))
		refreshCRC(bad)
		if _, err := MapSubSpace(bad, a, scheduler.CentralPolicy{}, 1, 0, nil); err == nil {
			t.Fatal("MapSubSpace accepted a globals count != state count")
		}
		if _, err := ReadSubSpace(bytes.NewReader(bad), a, scheduler.CentralPolicy{}, 1, 0); err == nil {
			t.Fatal("ReadSubSpace accepted a globals count != state count")
		}
	})

	t.Run("not-ascending", func(t *testing.T) {
		bad := copyAt(data, 0)
		first := globCount + 8
		// Swap the first two globals: counts and range stay valid, order breaks.
		g0 := binary.LittleEndian.Uint64(bad[first:])
		g1 := binary.LittleEndian.Uint64(bad[first+8:])
		binary.LittleEndian.PutUint64(bad[first:], g1)
		binary.LittleEndian.PutUint64(bad[first+8:], g0)
		refreshCRC(bad)
		if _, err := MapSubSpace(bad, a, scheduler.CentralPolicy{}, 1, 0, nil); err == nil {
			t.Fatal("MapSubSpace accepted non-ascending globals")
		}
		if _, err := ReadSubSpace(bytes.NewReader(bad), a, scheduler.CentralPolicy{}, 1, 0); err == nil {
			t.Fatal("ReadSubSpace accepted non-ascending globals")
		}
	})

	t.Run("nonzero-padding", func(t *testing.T) {
		h, err := parseHeader([32]byte(data[:32]), kindSubSpace)
		if err != nil {
			t.Fatal(err)
		}
		if pad8(h.edges*4) == 0 {
			t.Skip("even edge count: no succ padding to corrupt")
		}
		bad := copyAt(data, 0)
		succPadAt := 40 + (h.states+1)*8 + 8 + h.edges*4
		bad[succPadAt] = 0xff
		refreshCRC(bad)
		if _, err := MapSubSpace(bad, a, scheduler.CentralPolicy{}, 1, 0, nil); err == nil {
			t.Fatal("MapSubSpace accepted nonzero section padding")
		}
		if _, err := ReadSubSpace(bytes.NewReader(bad), a, scheduler.CentralPolicy{}, 1, 0); err == nil {
			t.Fatal("ReadSubSpace accepted nonzero section padding")
		}
	})
}

// TestMappingLifecycle pins the ownership contract: Close is idempotent,
// defers the unmap to the last Release, and refuses new Acquires.
func TestMappingLifecycle(t *testing.T) {
	_, a, data := testSpaceBytes(t)
	unmapped := 0
	sp, err := MapSpace(copyAt(data, 0), a, scheduler.CentralPolicy{}, 1, 0, func() error {
		unmapped++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if unmapped != 0 {
		t.Fatal("Close unmapped while a reference was held")
	}
	if err := sp.Acquire(); err == nil {
		t.Fatal("Acquire succeeded after Close")
	}
	if err := sp.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := sp.Release(); err != nil {
		t.Fatal(err)
	}
	if unmapped != 1 {
		t.Fatalf("unmap ran %d times, want exactly once at the last Release", unmapped)
	}
}

// TestMaterialize promotes a mapped subspace to heap arrays; the unmap
// hook scribbles over the buffer, so any surviving alias would corrupt the
// comparison.
func TestMaterialize(t *testing.T) {
	ss, a, data := testSubSpaceBytes(t)
	buf := copyAt(data, 0)
	mapped, err := MapSubSpace(buf, a, scheduler.CentralPolicy{}, 1, 0, func() error {
		clear(buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Materialize(); err != nil {
		t.Fatal(err)
	}
	if mapped.Mapped() {
		t.Fatal("subspace still marked mapped after Materialize")
	}
	off, succ, prob := mapped.CSR()
	wantOff, wantSucc, wantProb := ss.CSR()
	if !reflect.DeepEqual(off, wantOff) || !reflect.DeepEqual(succ, wantSucc) || !reflect.DeepEqual(prob, wantProb) {
		t.Fatal("materialized CSR corrupted by buffer teardown")
	}
	if !reflect.DeepEqual(mapped.Globals(), ss.Globals()) {
		t.Fatal("materialized globals corrupted by buffer teardown")
	}
	if err := mapped.Close(); err != nil {
		t.Fatal("Close after Materialize:", err)
	}
}

// TestMapConcurrentClose races Close against pinned in-flight readers:
// the unmap hook poisons the buffer, so a premature unmap shows up as a
// data mismatch (and as a race under -race).
func TestMapConcurrentClose(t *testing.T) {
	ss, a, data := testSubSpaceBytes(t)
	wantOff, _, _ := ss.CSR()
	for round := 0; round < 20; round++ {
		buf := copyAt(data, 0)
		mapped, err := MapSubSpace(buf, a, scheduler.CentralPolicy{}, 1, 0, func() error {
			clear(buf)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := mapped.Acquire(); err != nil {
					return // closed before we started: nothing to read
				}
				defer mapped.Release()
				off, _, _ := mapped.CSR()
				for i := range off {
					if off[i] != wantOff[i] {
						t.Errorf("read %d at offset %d: buffer unmapped under a pinned reader", off[i], i)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			mapped.Close()
		}()
		close(start)
		wg.Wait()
	}
}

// TestMapTrustedParityAndShape pins the trusted fast path: on bytes that
// already passed a full validation it produces the same arrays as
// MapSpace, and shape errors — misalignment, truncation — are still
// caught. Only the O(bytes) integrity passes are the caller's vouched-for
// territory (the spacecache vouches via inode-identity stamps).
func TestMapTrustedParityAndShape(t *testing.T) {
	sp, a, data := testSpaceBytes(t)
	got, err := MapSpaceTrusted(copyAt(data, 0), a, scheduler.CentralPolicy{}, 1, 0, nil)
	if err != nil {
		t.Fatalf("MapSpaceTrusted: %v", err)
	}
	off, succ, prob := got.CSR()
	wantOff, wantSucc, wantProb := sp.CSR()
	if !reflect.DeepEqual(off, wantOff) || !reflect.DeepEqual(succ, wantSucc) ||
		!reflect.DeepEqual(prob, wantProb) || !reflect.DeepEqual(got.Legit, sp.Legit) {
		t.Fatal("trusted load differs from the built space")
	}
	if _, err := MapSpaceTrusted(copyAt(data, 4), a, scheduler.CentralPolicy{}, 1, 0, nil); !errors.Is(err, ErrNotMappable) {
		t.Fatalf("misaligned trusted load: err = %v, want ErrNotMappable", err)
	}
	if _, err := MapSpaceTrusted(copyAt(data[:len(data)-16], 0), a, scheduler.CentralPolicy{}, 1, 0, nil); err == nil {
		t.Fatal("trusted load accepted a truncated buffer")
	}

	ss, sa, sdata := testSubSpaceBytes(t)
	mss, err := MapSubSpaceTrusted(copyAt(sdata, 0), sa, scheduler.CentralPolicy{}, 1, 0, nil)
	if err != nil {
		t.Fatalf("MapSubSpaceTrusted: %v", err)
	}
	if mss.States != ss.States || !reflect.DeepEqual(mss.Globals(), ss.Globals()) {
		t.Fatal("trusted subspace load differs from the built subspace")
	}
}
