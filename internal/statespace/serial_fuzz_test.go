package statespace

// Native fuzzing of the serialization readers. The frontier/dedup/serial
// stack feeds every cached analysis, so the contract under hostile bytes
// must be absolute: an arbitrary mutation of a serialized space either
// fails cleanly (an error — wrong magic, shape violation, checksum
// mismatch) or decodes to a system whose re-serialization reproduces the
// input bytes exactly (the CRC-32C passed, so the payload was untouched).
// Panics, hangs and silently-wrong spaces are all failures. Seeds are
// valid serializations of small explored systems; the fuzzer mutates from
// there into the interesting near-valid region.
//
// The zero-copy mapped loader is held to a stronger bar still: on a
// little-endian host with an aligned buffer it must accept exactly the
// byte strings the streaming decoder accepts — covering, among the shared
// validation, the Globals-vs-state-count consistency check — and produce
// bit-equal arrays for them (FuzzMapSpace, FuzzMapSubSpace).

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/scheduler"
)

func fuzzRing(f *testing.F, n int) *tokenring.Algorithm {
	f.Helper()
	a, err := tokenring.New(n)
	if err != nil {
		f.Fatal(err)
	}
	return a
}

// FuzzReadSpace mutates serialized full spaces: ReadSpace must error or
// round-trip bit-identically, never panic.
func FuzzReadSpace(f *testing.F) {
	a := fuzzRing(f, 4)
	pol := scheduler.CentralPolicy{}
	sp, err := Build(a, pol, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sp.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// (mutations cover truncations)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSpace(bytes.NewReader(data), a, pol, 1, 0)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted space failed to re-serialize: %v", err)
		}
		// ReadSpace consumed exactly out.Len() bytes; trailing garbage is
		// legitimately ignored, but the consumed prefix must match — the
		// checksum leaves no room for an accepted-but-different payload.
		if out.Len() > len(data) || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted space re-serializes to %d bytes differing from its input", out.Len())
		}
	})
}

// FuzzReadSubSpace is the subspace analogue, with the Globals section and
// its strict-ascent validation in play.
func FuzzReadSubSpace(f *testing.F) {
	a := fuzzRing(f, 5)
	pol := scheduler.CentralPolicy{}
	seeds := []int64{0, 1, 7, 13} // inside tokenring(5)'s 2^5-configuration range
	ss, err := BuildFrom(a, pol, seeds, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ss.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:40])
	f.Add([]byte("WSSC\x01\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSubSpace(bytes.NewReader(data), a, pol, 1, 0)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted subspace failed to re-serialize: %v", err)
		}
		if out.Len() > len(data) || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted subspace re-serializes to %d bytes differing from its input", out.Len())
		}
	})
}

// FuzzReadFromSubSpace drives the lower-level ReadFrom seam directly on a
// receiver bound to a mismatched instance, so the dimension validation
// paths get fuzzed too: a stream for one instance must never load into
// another.
func FuzzReadFromSubSpace(f *testing.F) {
	a := fuzzRing(f, 5)
	other := fuzzRing(f, 4)
	pol := scheduler.CentralPolicy{}
	ss, err := BuildFrom(a, pol, []int64{0, 3}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ss.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSubSpace(bytes.NewReader(data), other, pol, 1, 0)
		if err != nil {
			return
		}
		// tokenring(4) lives in a 3^4 = 81-configuration range, the seeded
		// tokenring(5) stream in a 2^5 = 32 one: any accepted stream must
		// carry the receiver's total (the seed corpus entry itself must be
		// rejected).
		if got.TotalConfigs() != 81 {
			t.Fatalf("subspace with total %d accepted for an 81-configuration instance", got.TotalConfigs())
		}
	})
}

// FuzzMapSpace cross-checks the zero-copy loader against the streaming
// decoder on mutated full-space bytes: on this host (aligned buffer;
// big-endian hosts skip inside the loop) the two must agree byte-for-byte
// on acceptance, arrays and re-serialization. The mapped loader ignores
// trailing garbage exactly like the stream reader, so equality is over
// the consumed prefix.
func FuzzMapSpace(f *testing.F) {
	a := fuzzRing(f, 4)
	pol := scheduler.CentralPolicy{}
	sp, err := Build(a, pol, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sp.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		if !hostLittleEndian {
			t.Skip("mapped loads fall back on big-endian hosts")
		}
		mapped, mapErr := MapSpace(copyAt(data, 0), a, pol, 1, 0, nil)
		decoded, decErr := ReadSpace(bytes.NewReader(data), a, pol, 1, 0)
		if errors.Is(mapErr, ErrNotMappable) {
			t.Fatalf("aligned little-endian buffer reported ErrNotMappable")
		}
		if (mapErr == nil) != (decErr == nil) {
			t.Fatalf("paths disagree on acceptance: map=%v decode=%v", mapErr, decErr)
		}
		if mapErr != nil {
			return
		}
		mo, ms, mp := mapped.CSR()
		do, ds, dp := decoded.CSR()
		if mapped.States != decoded.States || !reflect.DeepEqual(mapped.Legit, decoded.Legit) ||
			!reflect.DeepEqual(mo, do) || !reflect.DeepEqual(ms, ds) || !reflect.DeepEqual(mp, dp) {
			t.Fatalf("mapped and decoded spaces differ for the same accepted bytes")
		}
		var out bytes.Buffer
		if _, err := mapped.WriteTo(&out); err != nil {
			t.Fatalf("accepted mapped space failed to re-serialize: %v", err)
		}
		if out.Len() > len(data) || !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatalf("accepted mapped space re-serializes to %d bytes differing from its input", out.Len())
		}
	})
}

// FuzzMapSubSpace is the subspace analogue, with the Globals section —
// its state-count consistency and strict-ascent validation — in play on
// the mapped path.
func FuzzMapSubSpace(f *testing.F) {
	a := fuzzRing(f, 5)
	pol := scheduler.CentralPolicy{}
	ss, err := BuildFrom(a, pol, []int64{0, 1, 7, 13}, Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ss.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:40])
	f.Fuzz(func(t *testing.T, data []byte) {
		if !hostLittleEndian {
			t.Skip("mapped loads fall back on big-endian hosts")
		}
		mapped, mapErr := MapSubSpace(copyAt(data, 0), a, pol, 1, 0, nil)
		decoded, decErr := ReadSubSpace(bytes.NewReader(data), a, pol, 1, 0)
		if errors.Is(mapErr, ErrNotMappable) {
			t.Fatalf("aligned little-endian buffer reported ErrNotMappable")
		}
		if (mapErr == nil) != (decErr == nil) {
			t.Fatalf("paths disagree on acceptance: map=%v decode=%v", mapErr, decErr)
		}
		if mapErr != nil {
			return
		}
		mo, ms, mp := mapped.CSR()
		do, ds, dp := decoded.CSR()
		if mapped.States != decoded.States || !reflect.DeepEqual(mapped.Legit, decoded.Legit) ||
			!reflect.DeepEqual(mo, do) || !reflect.DeepEqual(ms, ds) || !reflect.DeepEqual(mp, dp) ||
			!reflect.DeepEqual(mapped.Globals(), decoded.Globals()) {
			t.Fatalf("mapped and decoded subspaces differ for the same accepted bytes")
		}
	})
}
