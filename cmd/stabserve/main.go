// Command stabserve is the stabilization-as-a-service daemon: a
// long-lived HTTP/JSON server that accepts classification and k-fault
// sweep jobs, runs them on a bounded worker pool through the same
// execution path as stabcheck, and answers repeats from an in-memory
// result LRU over the on-disk space cache. Endpoints:
//
//	POST /jobs              submit a job (the stabcheck flags as JSON)
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  the result document (byte-identical to
//	                        stabcheck -json for the same request)
//	DELETE /jobs/{id}       cancel (takes effect at the exploration's
//	                        next cooperative boundary)
//	GET  /jobs/{id}/events  live progress as Server-Sent Events
//	GET  /metrics           OpenMetrics exposition of the obs registry
//	GET  /healthz           liveness
//
// Identical in-flight submissions join the running job (singleflight);
// finished documents are answered from the LRU without touching disk;
// and a cold job of a previously-seen instance loads the explored space
// from the cache directory instead of exploring.
//
// Examples:
//
//	stabserve -addr localhost:8321 -cache ~/.weakstab-cache
//	curl -X POST localhost:8321/jobs -d '{"alg":"tokenring","n":6}'
//	curl localhost:8321/jobs/job-1/result
//	curl -N localhost:8321/jobs/job-1/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"weakstab/internal/cli"
	"weakstab/internal/obs"
	"weakstab/internal/service"
	"weakstab/internal/spacecache"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stabserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stabserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8321", "listen address (use :0 for an ephemeral port)")
		cacheDir = fs.String("cache", "", "on-disk space cache directory shared by all jobs")
		mmap     = fs.Bool("mmap", true, "zero-copy mmap-backed cache loads")
		jobs     = fs.Int("jobs", 2, "job worker-pool size (concurrent explorations)")
		queue    = fs.Int("queue", 16, "admission queue depth; submissions beyond it get 503")
		lruSize  = fs.Int("lru", 64, "in-memory result LRU capacity (documents)")
		feed     = fs.Int("feed", 256, "per-job event ring capacity for /events subscribers")
		timeout  = fs.Duration("timeout", 0, "default per-job deadline from admission (0 = none)")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGINT/SIGTERM before outstanding jobs are canceled")
	)
	var of cli.ObsFlags
	of.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	orun, err := of.Start("stabserve", args)
	if err != nil {
		return err
	}

	// A server always has a live observer — /metrics must scrape even
	// when no obs flag is set (the CLI's "off by default" does not apply
	// to a daemon whose whole point includes the scrape endpoint).
	o := orun.Observer()
	if o == nil {
		o = obs.Default()
	}
	if o == nil {
		o = obs.New()
	}

	srvErr := func() error {
		cache, err := spacecache.Open(*cacheDir)
		if err != nil {
			return err
		}
		cache.SetMmap(*mmap)
		mgr := service.NewManager(service.Config{
			Deps:           service.Deps{Cache: cache, Obs: o},
			Workers:        *jobs,
			QueueDepth:     *queue,
			LRUSize:        *lruSize,
			FeedDepth:      *feed,
			DefaultTimeout: *timeout,
		})

		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: mgr.Handler()}
		fmt.Printf("stabserve listening on http://%s\n", ln.Addr())

		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()

		select {
		case err := <-serveDone:
			return err
		case <-ctx.Done():
		}
		// Graceful exit: stop accepting, drain the pool (canceling
		// outstanding jobs if the budget runs out), then close idle
		// connections.
		fmt.Println("stabserve draining")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := mgr.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "stabserve: drain:", err)
		}
		return srv.Shutdown(drainCtx)
	}()
	if err := orun.Finish(srvErr); srvErr == nil {
		srvErr = err
	}
	return srvErr
}
