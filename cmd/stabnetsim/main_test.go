package main

// Golden-output tests for the network-simulation CLI. Every run is a pure
// function of (instance, fault stack, seed) — the backend is bit-identical
// across worker and shard counts — so the rendered reports are pinned
// byte-for-byte. Regenerate with
//
//	go test ./cmd/stabnetsim -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the observed output")

func runGolden(t *testing.T, name string, args ...string) {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if sb.String() != string(want) {
		t.Errorf("output of stabnetsim %s differs from %s:\n--- got ---\n%s--- want ---\n%s",
			strings.Join(args, " "), path, sb.String(), want)
	}
}

func TestGoldenReliable(t *testing.T) {
	runGolden(t, "coloring64_reliable",
		"-alg", "coloring", "-n", "64", "-trials", "30", "-net", "loss:0.05")
}

func TestGoldenHerman(t *testing.T) {
	runGolden(t, "herman9_reliable",
		"-alg", "herman", "-n", "9", "-trials", "50")
}

func TestGoldenRestabilizeFaultStack(t *testing.T) {
	runGolden(t, "coloring256_restab_fullstack",
		"-alg", "coloring", "-n", "256", "-restabilize", "24", "-trials", "12",
		"-net", "latency:uniform:1:2,ge:0.05:0.3:0.01:0.5,dup:0.05,reorder:0.05:3,corrupt:0.01,crash:0.001:3",
		"-max-rounds", "5000")
}

// TestGoldenWorkerInvariance reruns a golden case with adversarial worker
// and shard counts: the report must stay byte-identical — the CLI face of
// the backend's determinism contract.
func TestGoldenWorkerInvariance(t *testing.T) {
	for _, ws := range [][2]string{{"1", "1"}, {"4", "7"}} {
		runGolden(t, "coloring256_restab_fullstack",
			"-alg", "coloring", "-n", "256", "-restabilize", "24", "-trials", "12",
			"-net", "latency:uniform:1:2,ge:0.05:0.3:0.01:0.5,dup:0.05,reorder:0.05:3,corrupt:0.01,crash:0.001:3",
			"-max-rounds", "5000",
			"-workers", ws[0], "-shards", ws[1])
	}
}

// TestFailureRateSurfaced pins the censored-batch rendering: when some
// trials exhaust the round budget, the summary line must carry the
// converged/attempted denominator and the failure rate must print before
// the distribution — the statistics describe the converged subset only.
func TestFailureRateSurfaced(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-alg", "herman", "-n", "9", "-trials", "10", "-max-rounds", "1"}, &sb)
	if err == nil {
		t.Fatal("a batch with failures must return an error")
	}
	out := sb.String()
	iSummary := strings.Index(out, "convergence rounds: ")
	iRate := strings.Index(out, "failure rate: ")
	iDist := strings.Index(out, "distribution: ")
	if iSummary < 0 || iRate < 0 {
		t.Fatalf("missing summary or failure-rate line:\n%s", out)
	}
	if !strings.Contains(out, "/10)") {
		t.Fatalf("summary lacks the converged/attempted denominator:\n%s", out)
	}
	if iDist >= 0 && iRate > iDist {
		t.Fatalf("failure rate printed after the distribution:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "nope"},
		{"-alg", "coloring", "-n", "64", "-net", "loss:2"},
		{"-alg", "coloring", "-n", "64", "-net", "warp:0.5"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
