package main

// Observability integration tests for the netsim CLI: instrumentation
// must never change the report, and the trial batch's JSONL trace —
// round samples at power-of-two check rounds plus one netsim.trial per
// trial, all emitted from the serial trial loop of a bit-deterministic
// backend — is pinned golden after normalizing timings. Regenerate with
//
//	go test ./cmd/stabnetsim -run TestGoldenTrace -update

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var normTimes = regexp.MustCompile(`"(t_ms|wall_ms|cpu_ms)":[0-9eE.+-]+`)

// TestObsByteIdentity: the trial report with tracing, progress and a
// manifest on is byte-identical to the plain run's.
func TestObsByteIdentity(t *testing.T) {
	args := []string{"-alg", "herman", "-n", "9", "-trials", "20"}
	var plain strings.Builder
	if err := run(args, &plain); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	dir := t.TempDir()
	obsArgs := append(append([]string{}, args...),
		"-progress", "-trace-out", filepath.Join(dir, "trace.jsonl"),
		"-manifest", filepath.Join(dir, "run.json"))
	var instrumented strings.Builder
	if err := run(obsArgs, &instrumented); err != nil {
		t.Fatalf("run(%v): %v", obsArgs, err)
	}
	if plain.String() != instrumented.String() {
		t.Errorf("report changes under observability:\n--- plain ---\n%s--- instrumented ---\n%s",
			plain.String(), instrumented.String())
	}
}

// TestGoldenTrace pins the JSONL event stream of a small trial batch.
func TestGoldenTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-alg", "herman", "-n", "9", "-trials", "5", "-trace-out", trace}
	if err := run(args, &strings.Builder{}); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	got := normTimes.ReplaceAllString(string(raw), `"$1":0`)
	path := filepath.Join("testdata", "trace_herman9_trials5.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("normalized trace differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestManifest checks the netsim manifest: the effective master seed
// (the replay satellite), trial counts in extra, and the deterministic
// message totals of the batch.
func TestManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "run.json")
	args := []string{"-alg", "herman", "-n", "9", "-trials", "5", "-seed", "7", "-manifest", manifest}
	if err := run(args, &strings.Builder{}); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command string           `json:"command"`
		Seed    int64            `json:"seed"`
		SeedSet bool             `json:"seed_set"`
		Metrics map[string]int64 `json:"metrics"`
		Rates   map[string]float64
		Extra   map[string]any `json:"extra"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, raw)
	}
	if m.Command != "stabnetsim" || !m.SeedSet || m.Seed != 7 {
		t.Errorf("manifest identity = (%q, seed %d set=%v), want (stabnetsim, 7, true)", m.Command, m.Seed, m.SeedSet)
	}
	if got := m.Metrics["netsim.runs"]; got != 5 {
		t.Errorf("manifest metric netsim.runs = %d, want 5", got)
	}
	if m.Metrics["netsim.proc_rounds"] <= 0 || m.Rates["proc_rounds_per_sec"] <= 0 {
		t.Errorf("manifest proc-round throughput missing: metrics=%v rates=%v", m.Metrics, m.Rates)
	}
	if trials, ok := m.Extra["trials"].(float64); !ok || trials != 5 {
		t.Errorf("manifest extra.trials = %v, want 5", m.Extra["trials"])
	}
	if failures, ok := m.Extra["failures"].(float64); !ok || failures != 0 {
		t.Errorf("manifest extra.failures = %v, want 0", m.Extra["failures"])
	}
}
