// Command stabnetsim runs algorithms over the message-passing network
// backend: processes exchange state in messages through a composable fault
// stack (latency, loss, bursts, duplication, reorder, corruption,
// crash-recover) and the tool reports convergence — or, with -restabilize,
// recovery-from-transient-faults — distributions over repeated trials.
//
// Every run is a pure function of (instance, fault stack, seed): results
// are bit-identical across -workers and -shards settings, so the reported
// numbers are reproducible from the command line alone.
//
// Examples:
//
//	stabnetsim -alg coloring -n 1000 -trials 50 -net loss:0.1
//	stabnetsim -alg coloring -n 100000 -restabilize 1000 -trials 5 -net loss:0.05 -check-every 2
//	stabnetsim -alg herman -n 9 -trials 200
//	stabnetsim -alg dijkstra -n 12 -trials 100 -net latency:uniform:1:3,ge:0.05:0.3:0.01:0.5,crash:0.001:4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"weakstab/internal/cli"
	"weakstab/internal/netsim"
	"weakstab/internal/stats"
)

var errParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errParse) {
			fmt.Fprintln(os.Stderr, "stabnetsim:", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stabnetsim", flag.ContinueOnError)
	var (
		alg         = fs.String("alg", "coloring", "algorithm: "+strings.Join(cli.Algorithms(), ", "))
		n           = fs.Int("n", 64, "number of processes")
		topology    = fs.String("topology", "", "topology where the algorithm allows one: ring (coloring default), chain, star, random, figure2")
		k           = fs.Int("k", 0, "dijkstra state count / token ring modulus override")
		transform   = fs.Bool("transform", false, "apply the §4 coin-toss transformer")
		bias        = fs.Float64("bias", 0.5, "transformer coin bias")
		seed        = fs.Int64("seed", 1, "master seed: every trial derives its own from (seed, trial)")
		trials      = fs.Int("trials", 100, "number of simulated executions")
		maxRounds   = fs.Int("max-rounds", 0, "round budget per trial (0 = 100000)")
		net         = fs.String("net", "", "comma-separated network fault stack: "+cli.FaultGrammar+" (empty = reliable synchronous network)")
		restabilize = fs.Int("restabilize", -1, "measure re-stabilization: corrupt this many processes of a legitimate configuration per trial instead of starting at random")
		checkEvery  = fs.Int("check-every", 0, "legitimacy-check period in rounds (0 = every round)")
		workers     = fs.Int("workers", 0, "worker goroutines (0 = all CPUs; never affects results)")
		shards      = fs.Int("shards", 0, "graph partitions owning state (0 = auto; never affects results)")
	)
	var of cli.ObsFlags
	var pf cli.ProfileFlags
	of.Register(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errParse
	}

	// Observability and profilers bracket the whole batch; both write to
	// side channels only, so the report on out stays byte-identical with
	// them on, and the manifest records the effective master seed every
	// trial derives from.
	orun, err := of.Start("stabnetsim", args)
	if err != nil {
		return err
	}
	stopProf, err := pf.Start()
	if err != nil {
		orun.Finish(err)
		return err
	}
	orun.SetSeed(*seed)
	runErr := func() error {
		spec := cli.Spec{Algorithm: *alg, N: *n, Topology: *topology, K: *k,
			Transform: *transform, Bias: *bias, Seed: *seed}
		a, err := spec.Build()
		if err != nil {
			return err
		}
		faults, err := cli.ParseFaults(*net)
		if err != nil {
			return err
		}
		opts := netsim.Options{
			MaxRounds: *maxRounds, Seed: *seed, Faults: faults,
			Workers: *workers, Shards: *shards, CheckEvery: *checkEvery,
		}

		network := "reliable (synchronous, latency 1)"
		if len(faults) > 0 {
			names := make([]string, len(faults))
			for i, f := range faults {
				names[i] = f.Name()
			}
			network = strings.Join(names, " → ")
		}
		fmt.Fprintf(out, "%s over message-passing network: %s\n", a.Name(), network)

		var res netsim.TrialResult
		var what string
		if *restabilize >= 0 {
			what = "re-stabilization rounds"
			fmt.Fprintf(out, "%d trials from a legitimate configuration with %d corrupted processes (seed %d)\n",
				*trials, *restabilize, *seed)
			res, err = netsim.Restabilization(a, *trials, *restabilize, opts)
		} else {
			what = "convergence rounds"
			fmt.Fprintf(out, "%d trials from uniformly random configurations (seed %d)\n", *trials, *seed)
			res, err = netsim.Trials(a, *trials, opts)
		}
		if err != nil {
			return err
		}

		// Summary and CDF cover the converged trials only: print the
		// censoring denominator in the summary line and the failure rate
		// ahead of the distribution, so the statistics are never read as
		// whole-batch.
		fmt.Fprintf(out, "  %s: %s\n", what, res.Summary.StringOf(*trials))
		if res.Failures > 0 {
			fmt.Fprintf(out, "  failure rate: %.1f%% (%d of %d trials did not converge; distribution below covers converged trials only)\n",
				100*float64(res.Failures)/float64(*trials), res.Failures, *trials)
		}
		if len(res.CDF) > 0 {
			fmt.Fprintf(out, "  distribution: %s\n", stats.FormatCDF(res.CDF))
		}
		fmt.Fprintf(out, "  messages: sent=%d delivered=%d dropped-at-crashed=%d\n",
			res.Sent, res.Delivered, res.DroppedCrash)
		for _, c := range netsim.FaultCounts(faults) {
			fmt.Fprintf(out, "  fault events: %s=%d\n", c.Name, c.N)
		}
		orun.AddExtra("trials", *trials)
		orun.AddExtra("failures", res.Failures)
		if res.Failures > 0 {
			fmt.Fprintf(out, "  FAILURES: %d trials did not converge within the round budget\n", res.Failures)
			return fmt.Errorf("%d of %d trials failed", res.Failures, *trials)
		}
		return nil
	}()
	if err := stopProf(); runErr == nil {
		runErr = err
	}
	if err := orun.Finish(runErr); runErr == nil {
		runErr = err
	}
	return runErr
}
