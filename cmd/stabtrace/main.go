// Command stabtrace regenerates the paper's figures as ASCII traces:
//
//	stabtrace -fig 1   # Figure 1: token circulation on the 6-ring (mN=4)
//	stabtrace -fig 2   # Figure 2: Algorithm 2 converging on the 8-tree
//	stabtrace -fig 3   # Figure 3: synchronous livelock on the 4-chain
//
// It can also trace arbitrary instances:
//
//	stabtrace -alg tokenring -n 5 -sched central -steps 12
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"weakstab/internal/algorithms/leadertree"
	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/cli"
	"weakstab/internal/graph"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
	"weakstab/internal/trace"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "paper figure to regenerate (1, 2 or 3)")
		alg   = flag.String("alg", "", "algorithm for a custom trace: "+strings.Join(cli.Algorithms(), ", "))
		n     = flag.Int("n", 6, "number of processes")
		sched = flag.String("sched", "central", "scheduler for custom traces")
		steps = flag.Int("steps", 10, "steps for custom traces")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	var of cli.ObsFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	orun, err := of.Start("stabtrace", os.Args[1:])
	if err != nil {
		fatal(err)
	}
	orun.SetSeed(*seed)
	switch {
	case *fig == 1:
		figure1()
	case *fig == 2:
		figure2()
	case *fig == 3:
		figure3()
	case *alg != "":
		custom(*alg, *n, *sched, *steps, *seed)
	default:
		orun.Finish(nil)
		fmt.Fprintln(os.Stderr, "stabtrace: pass -fig 1|2|3 or -alg <name>")
		os.Exit(2)
	}
	if err := orun.Finish(nil); err != nil {
		fatal(err)
	}
}

func figure1() {
	a, err := tokenring.New(6)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Figure 1: token circulation on the anonymous 6-ring, mN = 4")
	fmt.Println("(dt values; * marks the token holder, who passes it to its successor)")
	tr := trace.RecordScript(a, a.LegitimateWithTokenAt(1), [][]int{{1}, {2}}, nil)
	trace.RenderRingPanels(os.Stdout, tr, func(cfg protocol.Configuration, p int) bool {
		return a.HasToken(cfg, p)
	})
}

func figure2() {
	g := graph.Figure2Tree()
	a, err := leadertree.New(g)
	if err != nil {
		fatal(err)
	}
	parents := []int{1, 0, 1, 4, 6, 7, 4, 5}
	init := make(protocol.Configuration, 8)
	for p, q := range parents {
		i, ok := g.LocalIndex(p, q)
		if !ok {
			fatal(fmt.Errorf("figure 2 tree: %d not adjacent to %d", q, p))
		}
		init[p] = i
	}
	fmt.Println("Figure 2: possible convergence of Algorithm 2 on the 8-process tree")
	tr := trace.RecordScript(a, init, [][]int{{5, 7}, {1, 7}, {2, 4}, {1, 4}}, nil)
	trace.RenderLabeledPanels(os.Stdout, tr, parentLabel(a))
	fmt.Printf("terminal: %v, leader: P%d\n", a.Legitimate(tr.Final()), a.Leaders(tr.Final())[0]+1)
}

func figure3() {
	g, err := graph.Chain(4)
	if err != nil {
		fatal(err)
	}
	a, err := leadertree.New(g)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Figure 3: synchronous execution of Algorithm 2 on the 4-chain (period-2 livelock)")
	init := protocol.Configuration{0, 0, 1, 0}
	tr := trace.Record(a, scheduler.NewSynchronous(), init, nil, 4, nil)
	trace.RenderLabeledPanels(os.Stdout, tr, parentLabel(a))
	fmt.Println("the execution repeats panels (i)/(ii) forever and never converges")
}

func parentLabel(a *leadertree.Algorithm) trace.StateLabeler {
	return func(cfg protocol.Configuration, p int) string {
		if par := a.Parent(cfg, p); par >= 0 {
			return fmt.Sprintf("→P%d", par+1)
		}
		return "⊥"
	}
}

func custom(alg string, n int, sched string, steps int, seed int64) {
	spec := cli.Spec{Algorithm: alg, N: n, Seed: seed}
	a, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	s, err := cli.BuildScheduler(sched)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := trace.Record(a, s, protocol.RandomConfiguration(a, rng), rng, steps, nil)
	trace.RenderTable(os.Stdout, tr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stabtrace:", err)
	os.Exit(1)
}
