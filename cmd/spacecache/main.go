// Command spacecache inspects and prunes the on-disk space cache that
// stabcheck/stabbench populate with -cache. Entries are self-describing —
// key and kind from the filename, size and last-use from the inode — so
// the tool needs no index: `stats` lists them oldest last-use first (the
// eviction order) with per-entry size and age plus totals, and
// `gc -max-bytes N` deletes least-recently-used entries until the
// survivors fit the budget. Eviction is whole-file and survivors are
// never rewritten, so gc cannot corrupt what it keeps; entries some
// running analysis still has mapped stay readable off the unlinked inode.
//
// Examples:
//
//	spacecache stats -dir ~/.weakstab-cache
//	spacecache gc -dir ~/.weakstab-cache -max-bytes 268435456
//	spacecache gc -dir ~/.weakstab-cache -max-bytes 0   # empty the cache
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"weakstab/internal/cli"
	"weakstab/internal/spacecache"
)

// errParse marks a flag-parsing failure the FlagSet has already reported
// (message + usage on stderr), so main exits 1 without printing it twice.
var errParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errParse) {
			fmt.Fprintln(os.Stderr, "spacecache:", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: subcommand dispatch and
// output against an injected writer.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: spacecache <stats|gc> -dir DIR [-max-bytes N]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("spacecache "+sub, flag.ContinueOnError)
	dir := fs.String("dir", "", "cache directory (as given to stabcheck/stabbench -cache)")
	var of cli.ObsFlags
	of.Register(fs)
	var maxBytes *int64
	switch sub {
	case "stats":
	case "gc":
		maxBytes = fs.Int64("max-bytes", -1, "delete oldest entries until the rest total at most this many bytes")
	default:
		return fmt.Errorf("unknown subcommand %q (want stats or gc)", sub)
	}
	if err := fs.Parse(rest); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errParse
	}
	if *dir == "" {
		return errors.New("-dir is required")
	}
	if _, err := os.Stat(*dir); err != nil {
		return err // inspecting must not create the directory, unlike Open
	}
	cache, err := spacecache.Open(*dir)
	if err != nil {
		return err
	}
	// The observability scope makes gc's cache.evict events land in a
	// trace or manifest like any other cache traffic.
	orun, err := of.Start("spacecache "+sub, args)
	if err != nil {
		return err
	}
	var runErr error
	switch {
	case sub == "stats":
		runErr = runStats(cache, out)
	case *maxBytes < 0:
		runErr = errors.New("gc requires -max-bytes N (0 empties the cache)")
	default:
		runErr = runGC(cache, out, *maxBytes)
	}
	if err := orun.Finish(runErr); runErr == nil {
		runErr = err
	}
	return runErr
}

// runStats prints the cache's entries oldest last-use first — the order gc
// would evict them in — with a trailing count/size total.
func runStats(cache *spacecache.Cache, out io.Writer) error {
	entries, err := cache.Entries()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "KEY\tKIND\tBYTES\tLAST-USE")
	var total int64
	for _, e := range entries {
		total += e.Bytes
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", e.Key, e.Kind, e.Bytes, e.LastUse.UTC().Format(time.RFC3339))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%d entries, %d bytes\n", len(entries), total)
	return err
}

// runGC evicts least-recently-used entries down to the byte budget and
// reports what went and what stayed.
func runGC(cache *spacecache.Cache, out io.Writer, maxBytes int64) error {
	deleted, remaining, err := cache.GC(maxBytes)
	for _, e := range deleted {
		fmt.Fprintf(out, "deleted %s.%s (%d bytes, last used %s)\n",
			e.Key, e.Kind, e.Bytes, e.LastUse.UTC().Format(time.RFC3339))
	}
	fmt.Fprintf(out, "%d entries deleted, %d bytes remain\n", len(deleted), remaining)
	return err
}
