package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/scheduler"
	"weakstab/internal/spacecache"
	"weakstab/internal/statespace"
)

// primeCache populates a temp cache with two spaces whose last-use order is
// known (ring 4 older than ring 5) and returns the directory and the keys
// oldest-first.
func primeCache(t *testing.T) (dir string, keys []string) {
	t.Helper()
	dir = t.TempDir()
	cache, err := spacecache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pol := scheduler.CentralPolicy{}
	for i, n := range []int{4, 5} {
		a, err := tokenring.New(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := cache.BuildSpace(a, pol, statespace.Options{}); err != nil {
			t.Fatal(err)
		}
		key := spacecache.Key(a, pol)
		keys = append(keys, key)
		stamp := time.Now().Add(-time.Hour + time.Duration(i)*time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key+".space"), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	return dir, keys
}

func TestStats(t *testing.T) {
	dir, keys := primeCache(t)
	var out strings.Builder
	if err := run([]string{"stats", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2 entries,") {
		t.Fatalf("stats output missing totals:\n%s", got)
	}
	// Oldest first: the eviction order gc would use.
	if i, j := strings.Index(got, keys[0]), strings.Index(got, keys[1]); i < 0 || j < 0 || i > j {
		t.Fatalf("stats not oldest-first (%d vs %d):\n%s", i, j, got)
	}
}

func TestGCCommand(t *testing.T) {
	dir, keys := primeCache(t)
	var out strings.Builder
	if err := run([]string{"gc", "-dir", dir, "-max-bytes", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "2 entries deleted, 0 bytes remain") {
		t.Fatalf("gc output:\n%s", got)
	}
	if i, j := strings.Index(got, keys[0]), strings.Index(got, keys[1]); i < 0 || j < 0 || i > j {
		t.Fatalf("gc did not delete oldest-first:\n%s", got)
	}
	for _, key := range keys {
		if _, err := os.Stat(filepath.Join(dir, key+".space")); !os.IsNotExist(err) {
			t.Fatalf("entry %s survived gc -max-bytes 0", key)
		}
	}
}

func TestBadUsage(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{},                          // no subcommand
		{"prune", "-dir", "x"},      // unknown subcommand
		{"stats"},                   // missing -dir
		{"gc", "-dir", t.TempDir()}, // gc without -max-bytes
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("run(%q) accepted bad usage", args)
		}
	}
	// Inspecting a nonexistent directory must fail, not create it.
	missing := filepath.Join(t.TempDir(), "nope")
	if err := run([]string{"stats", "-dir", missing}, &out); err == nil {
		t.Fatal("stats created a missing directory")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("stats left a directory behind")
	}
}
