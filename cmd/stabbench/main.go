// Command stabbench regenerates the paper's experiment tables (DESIGN.md
// E1..E12d).
//
// Usage:
//
//	stabbench -list
//	stabbench [-run E8] [-quick] [-seed 7] [-trials 500]
//	stabbench -run E12a -cpuprofile cpu.out -memprofile mem.out
//	stabbench -cache ~/.weakstab-cache   # reruns load explored spaces from disk
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"weakstab/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run executes the command and returns its exit code; keeping it separate
// from main lets the profile-flushing defers fire before os.Exit.
func run() int {
	var (
		runID      = flag.String("run", "", "experiment id to run (default: all)")
		list       = flag.Bool("list", false, "list experiments and exit")
		quick      = flag.Bool("quick", false, "reduced sizes and trial counts")
		seed       = flag.Int64("seed", 1, "random seed")
		trials     = flag.Int("trials", 0, "Monte-Carlo trials override (0 = defaults)")
		workers    = flag.Int("workers", 0, "state-space exploration workers (0 = all CPUs)")
		cacheDir   = flag.String("cache", "", "on-disk space cache directory: repeated runs load explored spaces instead of rebuilding them")
		mmap       = flag.Bool("mmap", true, "zero-copy mmap-backed cache loads (bit-equal to -mmap=false, which stream-decodes)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to `file`")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
			fmt.Printf("      claim: %s\n", e.PaperClaim)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed, Trials: *trials, Workers: *workers, CacheDir: *cacheDir, NoMmap: !*mmap}
	if *runID == "" {
		if err := experiments.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			return 1
		}
		fmt.Println("all experiments verified against the paper's claims")
		return 0
	}
	e, ok := experiments.ByID(*runID)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
		return 2
	}
	fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
	fmt.Printf("paper claim: %s\n\n", e.PaperClaim)
	if err := e.Run(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		return 1
	}
	return 0
}
