// Command stabbench regenerates the paper's experiment tables (DESIGN.md
// E1..E12d).
//
// Usage:
//
//	stabbench -list
//	stabbench [-run E8] [-quick] [-seed 7] [-trials 500]
package main

import (
	"flag"
	"fmt"
	"os"

	"weakstab/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run (default: all)")
		list    = flag.Bool("list", false, "list experiments and exit")
		quick   = flag.Bool("quick", false, "reduced sizes and trial counts")
		seed    = flag.Int64("seed", 1, "random seed")
		trials  = flag.Int("trials", 0, "Monte-Carlo trials override (0 = defaults)")
		workers = flag.Int("workers", 0, "state-space exploration workers (0 = all CPUs)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
			fmt.Printf("      claim: %s\n", e.PaperClaim)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed, Trials: *trials, Workers: *workers}
	if *run == "" {
		if err := experiments.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("all experiments verified against the paper's claims")
		return
	}
	e, ok := experiments.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
		os.Exit(2)
	}
	fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
	fmt.Printf("paper claim: %s\n\n", e.PaperClaim)
	if err := e.Run(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", err)
		os.Exit(1)
	}
}
