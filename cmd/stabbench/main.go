// Command stabbench regenerates the paper's experiment tables (DESIGN.md
// E1..E12d).
//
// Usage:
//
//	stabbench -list
//	stabbench [-run E8] [-quick] [-seed 7] [-trials 500]
//	stabbench -run E12a -cpuprofile cpu.out -memprofile mem.out
//	stabbench -run E20 -progress -manifest run.json
//	stabbench -cache ~/.weakstab-cache   # reruns load explored spaces from disk
package main

import (
	"flag"
	"fmt"
	"os"

	"weakstab/internal/cli"
	"weakstab/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run executes the command and returns its exit code; keeping it separate
// from main lets profile and observability teardown fire before os.Exit.
func run() int {
	var (
		runID    = flag.String("run", "", "experiment id to run (default: all)")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "reduced sizes and trial counts")
		seed     = flag.Int64("seed", 1, "random seed")
		trials   = flag.Int("trials", 0, "Monte-Carlo trials override (0 = defaults)")
		workers  = flag.Int("workers", 0, "state-space exploration workers (0 = all CPUs)")
		cacheDir = flag.String("cache", "", "on-disk space cache directory: repeated runs load explored spaces instead of rebuilding them")
		mmap     = flag.Bool("mmap", true, "zero-copy mmap-backed cache loads (bit-equal to -mmap=false, which stream-decodes)")
	)
	var of cli.ObsFlags
	var pf cli.ProfileFlags
	of.Register(flag.CommandLine)
	pf.Register(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
			fmt.Printf("      claim: %s\n", e.PaperClaim)
		}
		return 0
	}

	var exp experiments.Experiment
	if *runID != "" {
		var ok bool
		if exp, ok = experiments.ByID(*runID); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
			return 2
		}
	}

	orun, err := of.Start("stabbench", os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "stabbench:", err)
		return 1
	}
	stopProf, err := pf.Start()
	if err != nil {
		orun.Finish(err)
		fmt.Fprintln(os.Stderr, "stabbench:", err)
		return 1
	}
	orun.SetSeed(*seed)
	if *runID != "" {
		orun.AddExtra("experiment", *runID)
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed, Trials: *trials, Workers: *workers, CacheDir: *cacheDir, NoMmap: !*mmap}
	runErr := func() error {
		if *runID == "" {
			if err := experiments.RunAll(os.Stdout, opt); err != nil {
				return err
			}
			fmt.Println("all experiments verified against the paper's claims")
			return nil
		}
		fmt.Printf("==== %s — %s ====\n", exp.ID, exp.Title)
		fmt.Printf("paper claim: %s\n\n", exp.PaperClaim)
		return exp.Run(os.Stdout, opt)
	}()
	if err := stopProf(); runErr == nil {
		runErr = err
	}
	if err := orun.Finish(runErr); runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "FAIL:", runErr)
		return 1
	}
	return 0
}
