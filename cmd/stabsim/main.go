// Command stabsim runs Monte-Carlo simulations: convergence-time
// statistics from random initial configurations, optionally with periodic
// transient-fault bursts, under any of the library's schedulers.
//
// Examples:
//
//	stabsim -alg tokenring -n 32 -transform -sched distributed -trials 500
//	stabsim -alg leadertree -n 16 -topology random -sched central -trials 200
//	stabsim -alg dijkstra -n 12 -sched roundrobin -trials 100
//	stabsim -alg tokenring -n 16 -transform -faults 3 -bursts 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"weakstab/internal/cli"
	"weakstab/internal/sim"
)

func main() {
	var (
		alg       = flag.String("alg", "tokenring", "algorithm: "+strings.Join(cli.Algorithms(), ", "))
		n         = flag.Int("n", 8, "number of processes")
		topology  = flag.String("topology", "chain", "tree topology: chain, star, random, figure2")
		k         = flag.Int("k", 0, "dijkstra state count / token ring modulus override")
		transform = flag.Bool("transform", false, "apply the §4 coin-toss transformer")
		bias      = flag.Float64("bias", 0.5, "transformer coin bias")
		sched     = flag.String("sched", "distributed", "scheduler: central, distributed, synchronous, roundrobin, lexmin")
		trials    = flag.Int("trials", 200, "number of runs")
		maxSteps  = flag.Int("max-steps", 1_000_000, "step budget per run")
		seed      = flag.Int64("seed", 1, "random seed")
		faults    = flag.Int("faults", 0, "fault-injection mode: corrupt this many processes per burst")
		bursts    = flag.Int("bursts", 50, "number of fault bursts (with -faults)")
		period    = flag.Int("period", 20, "legitimate steps between bursts (with -faults)")
	)
	var of cli.ObsFlags
	of.Register(flag.CommandLine)
	flag.Parse()

	spec := cli.Spec{Algorithm: *alg, N: *n, Topology: *topology, K: *k,
		Transform: *transform, Bias: *bias, Seed: *seed}
	a, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	s, err := cli.BuildScheduler(*sched)
	if err != nil {
		fatal(err)
	}
	opts := sim.Options{MaxSteps: *maxSteps}

	// The effective seed is printed on every report line and recorded in
	// the manifest, so any run is replayable from either.
	orun, err := of.Start("stabsim", os.Args[1:])
	if err != nil {
		fatal(err)
	}
	orun.SetSeed(*seed)

	code := 0
	if *faults > 0 {
		summary, err := sim.FaultRecovery(a, s, *bursts, *faults, *period, *seed, opts)
		if err != nil {
			orun.Finish(err)
			fatal(err)
		}
		fmt.Printf("%s under %s, %d bursts of %d corrupted processes (seed %d):\n",
			a.Name(), s.Name(), *bursts, *faults, *seed)
		fmt.Printf("  re-stabilization steps: %s\n", summary)
	} else {
		summary, failures := sim.Trials(a, s, *trials, *seed, opts)
		fmt.Printf("%s under %s, %d random-start trials (seed %d):\n", a.Name(), s.Name(), *trials, *seed)
		fmt.Printf("  convergence steps: %s\n", summary)
		orun.AddExtra("trials", *trials)
		orun.AddExtra("failures", failures)
		if failures > 0 {
			fmt.Printf("  FAILURES: %d runs did not converge within %d steps\n", failures, *maxSteps)
			code = 1
		}
	}
	if err := orun.Finish(nil); err != nil {
		fatal(err)
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stabsim:", err)
	os.Exit(1)
}
