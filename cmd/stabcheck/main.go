// Command stabcheck classifies an algorithm instance in the paper's
// stabilization hierarchy by exhaustive state-space exploration and exact
// Markov analysis: strong closure, possible/certain/probability-1
// convergence, strongly fair diverging lassos, and the resulting class
// (self / probabilistic / weak / none).
//
// The configuration space is explored exactly once — in parallel, on
// -workers workers — and shared by every analysis the flags request.
//
// Examples:
//
//	stabcheck -alg tokenring -n 6 -policy central
//	stabcheck -alg leadertree -n 4 -topology chain -policy synchronous
//	stabcheck -alg leadertree -n 4 -transform -policy synchronous
//	stabcheck -alg dijkstra -n 4 -k 4 -policy distributed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"weakstab/internal/checker"
	"weakstab/internal/cli"
	"weakstab/internal/core"
	"weakstab/internal/statespace"
)

func main() {
	var (
		alg       = flag.String("alg", "tokenring", "algorithm: "+strings.Join(cli.Algorithms(), ", "))
		n         = flag.Int("n", 5, "number of processes")
		topology  = flag.String("topology", "chain", "tree topology: chain, star, random, figure2")
		k         = flag.Int("k", 0, "dijkstra state count / token ring modulus override")
		transform = flag.Bool("transform", false, "apply the §4 coin-toss transformer")
		bias      = flag.Float64("bias", 0.5, "transformer coin bias")
		policy    = flag.String("policy", "central", "scheduler policy: central, distributed, synchronous")
		seed      = flag.Int64("seed", 1, "seed for random topologies")
		witness   = flag.Bool("witness", false, "print a worst-case convergence witness path")
		kfaults   = flag.Int("kfaults", -1, "also analyze convergence within k corrupted processes (k-stabilization lens)")
		lasso     = flag.Bool("lasso", false, "print the strongly fair diverging lasso and its Gouda-fairness verdict")
		maxStates = flag.Int64("max-states", 0, "state space cap (0 = default)")
		workers   = flag.Int("workers", 0, "exploration worker-pool size (0 = all CPUs)")
	)
	flag.Parse()

	spec := cli.Spec{Algorithm: *alg, N: *n, Topology: *topology, K: *k,
		Transform: *transform, Bias: *bias, Seed: *seed}
	a, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	pol, err := cli.BuildPolicy(*policy)
	if err != nil {
		fatal(err)
	}
	ts, err := statespace.Build(a, pol, statespace.Options{MaxStates: *maxStates, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	rep, err := core.AnalyzeSpace(ts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if err := rep.CheckHierarchy(); err != nil {
		fatal(err)
	}
	if rep.FairLassoFound {
		fmt.Println("  note: a strongly fair diverging execution exists — not self-stabilizing even under the strongly fair scheduler")
	}
	sp := checker.FromSpace(ts)
	if *witness {
		printWitness(sp)
	}
	if *kfaults >= 0 {
		dist := sp.DistanceToLegitimate()
		for k := 0; k <= *kfaults; k++ {
			v := sp.CheckKFaults(k, dist)
			fmt.Printf("  k=%d faults: %d configurations, possible=%v certain=%v\n",
				k, v.Configs, v.Possible, v.Certain)
		}
	}
	if *lasso {
		l := sp.FindStronglyFairLasso()
		if !l.Found {
			fmt.Println("  no strongly fair diverging lasso found")
		} else {
			fmt.Printf("  strongly fair diverging lasso: %d steps from %v; Gouda fair: %v\n",
				len(l.Records), l.Cycle[0], sp.GoudaFairLasso(l.Cycle))
		}
	}
}

// printWitness prints the shortest convergence path from the configuration
// farthest from L (or reports the first configuration with none).
func printWitness(sp *checker.Space) {
	worst, worstLen := -1, 0
	for s := 0; s < sp.States; s++ {
		path := sp.WitnessPath(sp.Config(s))
		if path == nil {
			fmt.Printf("  no convergence path from %v\n", sp.Config(s))
			return
		}
		if len(path) > worstLen {
			worst, worstLen = s, len(path)
		}
	}
	if worst < 0 {
		return
	}
	fmt.Printf("  worst-case witness (%d steps):\n", worstLen-1)
	for _, cfg := range sp.WitnessPath(sp.Config(worst)) {
		fmt.Printf("    %v\n", cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stabcheck:", err)
	os.Exit(1)
}
