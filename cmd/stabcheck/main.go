// Command stabcheck classifies an algorithm instance in the paper's
// stabilization hierarchy by exhaustive state-space exploration and exact
// Markov analysis: strong closure, possible/certain/probability-1
// convergence, strongly fair diverging lassos, and the resulting class
// (self / probabilistic / weak / none).
//
// The configuration space is explored exactly once — in parallel, on
// -workers workers — and shared by every analysis the flags request. Two
// exploration modes exist:
//
//   - default: the full mixed-radix index range (every configuration);
//   - -reachable: a frontier BFS from a seed set (-from, or the
//     legitimate set when -from is omitted) discovers only the reachable
//     subspace, so the cost scales with the forward closure of the seeds
//     instead of the whole space. Properties then quantify over the
//     explored states.
//
// The -kfaults verdicts themselves always pay for the fault ball, not the
// space: the distance-≤k ball is enumerated directly (no transition
// exploration; in closed form — zero full-range passes — when the
// algorithm implements protocol.LegitEnumerator) and only its forward
// closure is frontier-explored; the verdicts are bit-identical to the
// full-space ones. Combining `-reachable -kfaults k` is ball-sized end to
// end: the single ball enumeration and single closure exploration feed
// both the classification report (which then quantifies over the ball's
// closure) and the per-k verdicts.
//
// -kmax K replaces the single radius with an incremental sweep: k walks
// upward from 0, each radius extending the previous ball and its closure
// subspace instead of restarting — one ball enumeration and one closure
// exploration in total — and the walk stops at the smallest k that breaks
// certain convergence (the largest tolerable fault count), or at K.
//
// With -cache DIR, explored spaces, subspaces and ball enumerations are
// persisted to (and loaded from) an on-disk cache keyed by (algorithm,
// instance, policy[, seed set]) — balls by (instance, k) alone, since
// faults know no scheduler; a repeated invocation skips enumeration and
// exploration entirely and prints a bit-identical report.
//
// Examples:
//
//	stabcheck -alg tokenring -n 6 -policy central
//	stabcheck -alg leadertree -n 4 -topology chain -policy synchronous
//	stabcheck -alg leadertree -n 4 -transform -policy synchronous
//	stabcheck -alg dijkstra -n 4 -k 4 -policy distributed
//	stabcheck -alg tokenring -n 14 -reachable -kfaults 2   # ball-sized, end to end
//	stabcheck -alg tokenring -n 14 -kmax 3                 # smallest breaking k, one incremental pass
//	stabcheck -alg tokenring -n 10 -reachable              # closure of L
//	stabcheck -alg tokenring -n 6 -reachable -from 1,0,2,1,0,3
//	stabcheck -alg tokenring -n 11 -cache ~/.weakstab-cache  # warm runs skip exploration
//	stabcheck -alg tokenring -n 6 -json                    # the stabserve result document
//	stabcheck -alg tokenring -n 8 -mc -trials 50000        # Monte Carlo stabilization times
//	stabcheck -alg herman -n 9 -policy synchronous -mc -ci 0.5  # sample until the CI is tight
//
// -mc replaces the exact Markov hitting-time solve with the vectorized
// Monte Carlo estimator (internal/mc): walkers sample the explored CSR
// directly, so the estimate reaches spaces whose linear solve no longer
// fits, and the output is a pure function of (instance, policy, -seed,
// -trials, -ci, -mc-steps) — bit-identical across -workers.
//
// Every analysis runs through the same job-execution path the stabserve
// daemon uses (internal/service): the command assembles a service.Request
// from its flags, drives it through a single-worker service.Manager, and
// renders the result — as the classic text report, or with -json as the
// exact result document stabserve's GET /jobs/{id}/result returns
// (byte-identical, so the two surfaces diff clean).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"weakstab/internal/checker"
	"weakstab/internal/cli"
	"weakstab/internal/protocol"
	"weakstab/internal/service"
	"weakstab/internal/spacecache"
	"weakstab/internal/statespace"
	"weakstab/internal/stats"
)

// errParse marks a flag-parsing failure the FlagSet has already reported
// (message + usage on stderr), so main exits 1 without printing it twice.
var errParse = errors.New("flag parsing failed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errParse) {
			fmt.Fprintln(os.Stderr, "stabcheck:", err)
		}
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flag parsing, mode
// selection and report printing against an injected writer.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stabcheck", flag.ContinueOnError)
	var (
		alg       = fs.String("alg", "tokenring", "algorithm: "+strings.Join(cli.Algorithms(), ", "))
		n         = fs.Int("n", 5, "number of processes")
		topology  = fs.String("topology", "chain", "tree topology: chain, star, random, figure2")
		k         = fs.Int("k", 0, "dijkstra state count / token ring modulus override")
		transform = fs.Bool("transform", false, "apply the §4 coin-toss transformer")
		bias      = fs.Float64("bias", 0.5, "transformer coin bias")
		policy    = fs.String("policy", "central", "scheduler policy: central, distributed, synchronous")
		seed      = fs.Int64("seed", 1, "seed for random topologies")
		witness   = fs.Bool("witness", false, "print a worst-case convergence witness path")
		kfaults   = fs.Int("kfaults", -1, "also analyze convergence within k corrupted processes (k-stabilization lens; explores only the fault ball)")
		kmax      = fs.Int("kmax", -1, "incremental k-fault sweep: walk k=0..kmax, stopping at the smallest k that breaks certain convergence")
		lasso     = fs.Bool("lasso", false, "print the strongly fair diverging lasso and its Gouda-fairness verdict")
		reachable = fs.Bool("reachable", false, "explore only the subspace reachable from the seed set (-from, default: the legitimate set) instead of the full index range")
		from      = fs.String("from", "", "seed configurations for -reachable: comma-separated process states, ';' between configurations (e.g. 1,0,2;0,0,0)")
		maxStates = fs.Int64("max-states", 0, "state space cap (0 = default)")
		workers   = fs.Int("workers", 0, "exploration worker-pool size (0 = all CPUs)")
		cacheDir  = fs.String("cache", "", "on-disk space cache directory: repeated runs load the explored space instead of rebuilding it")
		mmap      = fs.Bool("mmap", true, "zero-copy mmap-backed cache loads (bit-equal to -mmap=false, which stream-decodes)")
		jsonOut   = fs.Bool("json", false, "emit the result as JSON — the exact document stabserve's result endpoint returns")
		mcMode    = fs.Bool("mc", false, "estimate stabilization times by Monte Carlo simulation on the explored space instead of the exact Markov solve (seeded by -seed; bit-identical across -workers)")
		trials    = fs.Int("trials", 0, "-mc walker count (0 = 10000)")
		ci        = fs.Float64("ci", 0, "-mc target 95% confidence half-width: stop early once the mean estimate is at least this tight (0 = run every trial)")
		mcSteps   = fs.Int("mc-steps", 0, "-mc per-walker step budget; walkers that exhaust it count as censored (0 = 1000000)")
	)
	var of cli.ObsFlags
	var pf cli.ProfileFlags
	of.Register(fs)
	pf.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h: usage printed, exit 0
		}
		return errParse
	}

	// The observability scope and profilers bracket the whole analysis;
	// both write to side channels only (stderr, trace/manifest/profile
	// files), so the report on out stays byte-identical with them on.
	orun, err := of.Start("stabcheck", args)
	if err != nil {
		return err
	}
	stopProf, err := pf.Start()
	if err != nil {
		orun.Finish(err)
		return err
	}
	orun.SetSeed(*seed)
	runErr := func() error {
		cache, err := spacecache.Open(*cacheDir)
		if err != nil {
			return err
		}
		cache.SetMmap(*mmap)

		// The flags become a service.Request and run through a
		// single-worker Manager — the same job-execution path stabserve
		// drives, so CLI and daemon cannot drift apart.
		req := service.Request{Alg: *alg, N: *n, Topology: *topology, K: *k,
			Transform: *transform, Bias: *bias, Seed: *seed, Policy: *policy,
			Reachable: *reachable, From: *from, MaxStates: *maxStates, Workers: *workers}
		if *kfaults >= 0 {
			v := *kfaults
			req.KFaults = &v
		}
		if *kmax >= 0 {
			switch {
			case *kfaults >= 0:
				return fmt.Errorf("use -kfaults K for one radius or -kmax K for the incremental sweep, not both")
			case *reachable:
				return fmt.Errorf("-kmax is ball-sized by construction; drop -reachable")
			case *from != "":
				return fmt.Errorf("-kmax seeds from the legitimate set; drop -from")
			case *witness || *lasso:
				return fmt.Errorf("-kmax prints sweep verdicts only; drop -witness/-lasso or use -kfaults")
			}
			v := *kmax
			req.KMax = &v
			req.Mode = service.ModeSweep
		}
		if *mcMode {
			switch {
			case *kfaults >= 0 || *kmax >= 0:
				return fmt.Errorf("-mc estimates stabilization times by simulation; drop -kfaults/-kmax")
			case *witness || *lasso:
				return fmt.Errorf("-mc prints the estimate only; drop -witness/-lasso")
			}
			req.Mode = service.ModeMC
			req.Trials = *trials
			req.CI = *ci
			req.MCMaxSteps = *mcSteps
		} else if *trials != 0 || *ci != 0 || *mcSteps != 0 {
			return fmt.Errorf("-trials/-ci/-mc-steps tune the Monte Carlo estimator; add -mc")
		}

		deps := service.Deps{Cache: cache}
		if !*jsonOut {
			// The text report renders inside the job, while the explored
			// system is still open — -witness and -lasso walk it without
			// a second exploration.
			deps.Inspect = func(resp *service.Response, ts statespace.TransitionSystem) {
				if resp.MC != nil {
					printMC(out, resp)
					return
				}
				printReport(out, resp, ts, *witness, *lasso)
			}
		}
		mgr := service.NewManager(service.Config{Deps: deps, Workers: 1})
		defer mgr.Shutdown(context.Background())
		resp, err := mgr.Do(context.Background(), req)
		if err != nil {
			if resp != nil && resp.CoreReport != nil && !*jsonOut {
				// A hierarchy violation (a library bug) still renders the
				// offending report before failing.
				fmt.Fprint(out, resp.CoreReport)
			}
			return err
		}
		if *jsonOut {
			return resp.WriteJSON(out)
		}
		if req.Mode == service.ModeSweep {
			printSweep(out, resp)
		}
		return nil
	}()
	if err := stopProf(); runErr == nil {
		runErr = err
	}
	if err := orun.Finish(runErr); runErr == nil {
		runErr = err
	}
	return runErr
}

// printReport renders the classic text report from the job's result
// document. It runs inside the job (service.Deps.Inspect) while the
// explored system is still open, which is what lets -witness and -lasso
// walk the space without a second exploration.
func printReport(out io.Writer, resp *service.Response, ts statespace.TransitionSystem, witness, lasso bool) {
	rep := resp.CoreReport
	fmt.Fprint(out, rep)
	if rep.FairLassoFound {
		fmt.Fprintln(out, "  note: a strongly fair diverging execution exists — not self-stabilizing even under the strongly fair scheduler")
	}
	sp := checker.FromSpace(ts)
	if witness {
		printWitness(out, sp)
	}
	for _, v := range resp.KFaults {
		fmt.Fprintf(out, "  k=%d faults: %d configurations, possible=%v certain=%v\n",
			v.K, v.Configs, v.Possible, v.Certain)
	}
	if resp.Ball != nil {
		fmt.Fprintf(out, "  (ball closure: %d of %d configurations explored)\n",
			resp.Ball.ClosureStates, resp.Ball.TotalConfigs)
	}
	if lasso {
		l := sp.FindStronglyFairLasso()
		if !l.Found {
			fmt.Fprintln(out, "  no strongly fair diverging lasso found")
		} else {
			fmt.Fprintf(out, "  strongly fair diverging lasso: %d steps from %v; Gouda fair: %v\n",
				len(l.Records), l.Cycle[0], sp.GoudaFairLasso(l.Cycle))
		}
	}
}

// printMC renders the Monte Carlo stabilization-time estimate. The
// summary covers the hit walkers only, so it prints with the censoring
// denominator and the failure split ahead of the distribution — same
// discipline as stabnetsim's converged-only statistics.
func printMC(out io.Writer, resp *service.Response) {
	m, res := resp.MC, resp.MCResult
	fmt.Fprintf(out, "%s under %s scheduler (%d configurations): monte carlo stabilization-time estimate\n",
		m.Algorithm, m.Policy, m.States)
	if m.TotalConfigs > int64(m.States) {
		fmt.Fprintf(out, "  reachable subspace:   %d of %d configurations; walks stay inside it\n", m.States, m.TotalConfigs)
	}
	fmt.Fprintf(out, "  trials:               %d of %d requested (seed %d", m.Trials, m.Requested, m.Seed)
	if resp.Request.CI > 0 {
		fmt.Fprintf(out, ", early stop at ±%g", resp.Request.CI)
	}
	fmt.Fprintln(out, ")")
	if m.Divergent+m.Censored > 0 {
		fmt.Fprintf(out, "  failure rate:         %.1f%% (%d divergent, %d censored at %d steps; statistics below cover the %d hits only)\n",
			100*m.FailureRate, m.Divergent, m.Censored, m.MaxSteps, m.Hits)
	}
	fmt.Fprintf(out, "  stabilization steps:  %s\n", res.Summary.StringOf(m.Trials))
	if len(res.CDF) > 0 {
		fmt.Fprintf(out, "  distribution:         %s\n", stats.FormatCDF(res.CDF))
	}
}

// printSweep renders the -kmax walk: one verdict line per radius and the
// smallest convergence-breaking k. The sweep pays for one ball
// enumeration and one closure exploration in total — and with a warm
// cache, for neither.
func printSweep(out io.Writer, resp *service.Response) {
	s := resp.Sweep
	fmt.Fprintf(out, "incremental k-fault sweep of %s under %s scheduler (k = 0..%d)\n",
		s.Algorithm, s.Policy, s.KMax)
	for _, v := range s.Verdicts {
		fmt.Fprintf(out, "  k=%d faults: %d configurations, possible=%v certain=%v\n",
			v.K, v.Configs, v.Possible, v.Certain)
	}
	if s.BreaksCertainAt >= 0 {
		fmt.Fprintf(out, "  smallest k breaking certain convergence: %d (counterexample %v)\n",
			s.BreaksCertainAt, protocol.Configuration(s.Verdicts[s.BreaksCertainAt].Counterexample))
	} else {
		fmt.Fprintf(out, "  no k <= %d breaks certain convergence\n", s.KMax)
	}
	if s.BreaksPossibleAt >= 0 {
		fmt.Fprintf(out, "  smallest k breaking possible convergence: %d\n", s.BreaksPossibleAt)
	}
	if resp.Ball != nil {
		fmt.Fprintf(out, "  (ball closure: %d of %d configurations explored, incrementally)\n",
			resp.Ball.ClosureStates, resp.Ball.TotalConfigs)
	}
}

// printWitness prints the shortest convergence path from the configuration
// farthest from L (or reports the first configuration with none). One
// backward BFS from L prices every state's distance; the worst witness is
// reconstructed from that single pass.
func printWitness(out io.Writer, sp *checker.Space) {
	path, stuck := sp.WorstCaseWitness()
	if stuck != nil {
		fmt.Fprintf(out, "  no convergence path from %v\n", stuck)
		return
	}
	if len(path) == 0 {
		return
	}
	fmt.Fprintf(out, "  worst-case witness (%d steps):\n", len(path)-1)
	for _, cfg := range path {
		fmt.Fprintf(out, "    %v\n", cfg)
	}
}
