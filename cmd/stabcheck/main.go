// Command stabcheck classifies an algorithm instance in the paper's
// stabilization hierarchy by exhaustive state-space exploration and exact
// Markov analysis: strong closure, possible/certain/probability-1
// convergence, strongly fair diverging lassos, and the resulting class
// (self / probabilistic / weak / none).
//
// The configuration space is explored exactly once — in parallel, on
// -workers workers — and shared by every analysis the flags request. Two
// exploration modes exist:
//
//   - default: the full mixed-radix index range (every configuration);
//   - -reachable: a frontier BFS from a seed set (-from, or the
//     legitimate set when -from is omitted) discovers only the reachable
//     subspace, so the cost scales with the forward closure of the seeds
//     instead of the whole space. Properties then quantify over the
//     explored states.
//
// The -kfaults verdicts themselves always pay for the fault ball, not the
// space: the distance-≤k ball is enumerated directly (no transition
// exploration) and only its forward closure is frontier-explored; the
// verdicts are bit-identical to the full-space ones. Note that without
// -reachable the main classification report still builds the full space —
// combine `-reachable -kfaults k` for an end-to-end ball-sized run (the
// report then quantifies over the ball's closure).
//
// Examples:
//
//	stabcheck -alg tokenring -n 6 -policy central
//	stabcheck -alg leadertree -n 4 -topology chain -policy synchronous
//	stabcheck -alg leadertree -n 4 -transform -policy synchronous
//	stabcheck -alg dijkstra -n 4 -k 4 -policy distributed
//	stabcheck -alg tokenring -n 14 -reachable -kfaults 2   # ball-sized, end to end
//	stabcheck -alg tokenring -n 10 -reachable              # closure of L
//	stabcheck -alg tokenring -n 6 -reachable -from 1,0,2,1,0,3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"weakstab/internal/checker"
	"weakstab/internal/cli"
	"weakstab/internal/core"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
	"weakstab/internal/statespace"
)

func main() {
	var (
		alg       = flag.String("alg", "tokenring", "algorithm: "+strings.Join(cli.Algorithms(), ", "))
		n         = flag.Int("n", 5, "number of processes")
		topology  = flag.String("topology", "chain", "tree topology: chain, star, random, figure2")
		k         = flag.Int("k", 0, "dijkstra state count / token ring modulus override")
		transform = flag.Bool("transform", false, "apply the §4 coin-toss transformer")
		bias      = flag.Float64("bias", 0.5, "transformer coin bias")
		policy    = flag.String("policy", "central", "scheduler policy: central, distributed, synchronous")
		seed      = flag.Int64("seed", 1, "seed for random topologies")
		witness   = flag.Bool("witness", false, "print a worst-case convergence witness path")
		kfaults   = flag.Int("kfaults", -1, "also analyze convergence within k corrupted processes (k-stabilization lens; explores only the fault ball)")
		lasso     = flag.Bool("lasso", false, "print the strongly fair diverging lasso and its Gouda-fairness verdict")
		reachable = flag.Bool("reachable", false, "explore only the subspace reachable from the seed set (-from, default: the legitimate set) instead of the full index range")
		from      = flag.String("from", "", "seed configurations for -reachable: comma-separated process states, ';' between configurations (e.g. 1,0,2;0,0,0)")
		maxStates = flag.Int64("max-states", 0, "state space cap (0 = default)")
		workers   = flag.Int("workers", 0, "exploration worker-pool size (0 = all CPUs)")
	)
	flag.Parse()

	spec := cli.Spec{Algorithm: *alg, N: *n, Topology: *topology, K: *k,
		Transform: *transform, Bias: *bias, Seed: *seed}
	a, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	pol, err := cli.BuildPolicy(*policy)
	if err != nil {
		fatal(err)
	}
	opt := statespace.Options{MaxStates: *maxStates, Workers: *workers}

	var ts statespace.TransitionSystem
	if *reachable {
		ts, err = exploreReachable(a, pol, *from, *kfaults, opt)
	} else {
		ts, err = statespace.Build(a, pol, opt)
	}
	if err != nil {
		fatal(err)
	}
	rep, err := core.AnalyzeSpace(ts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if err := rep.CheckHierarchy(); err != nil {
		fatal(err)
	}
	if rep.FairLassoFound {
		fmt.Println("  note: a strongly fair diverging execution exists — not self-stabilizing even under the strongly fair scheduler")
	}
	sp := checker.FromSpace(ts)
	if *witness {
		printWitness(sp)
	}
	if *kfaults >= 0 {
		verdicts, ballSp, err := checker.BallVerdicts(a, pol, *kfaults, opt)
		if err != nil {
			fatal(err)
		}
		for _, v := range verdicts {
			fmt.Printf("  k=%d faults: %d configurations, possible=%v certain=%v\n",
				v.K, v.Configs, v.Possible, v.Certain)
		}
		if ballSp != nil {
			fmt.Printf("  (ball closure: %d of %d configurations explored)\n",
				ballSp.NumStates(), ballSp.TotalConfigs())
		}
	}
	if *lasso {
		l := sp.FindStronglyFairLasso()
		if !l.Found {
			fmt.Println("  no strongly fair diverging lasso found")
		} else {
			fmt.Printf("  strongly fair diverging lasso: %d steps from %v; Gouda fair: %v\n",
				len(l.Records), l.Cycle[0], sp.GoudaFairLasso(l.Cycle))
		}
	}
}

// exploreReachable frontier-explores the forward closure of the -from
// seeds. Without -from, the seed set is the distance-≤k fault ball when
// -kfaults is given (so `-reachable -kfaults k` is a pure ball-sized
// analysis end to end) and the legitimate set otherwise (the closure of
// L — the region every closed stabilizing execution lives in).
func exploreReachable(a protocol.Algorithm, pol scheduler.Policy, from string, kfaults int, opt statespace.Options) (statespace.TransitionSystem, error) {
	if from == "" {
		k := 0
		if kfaults > 0 {
			k = kfaults
		}
		seeds, _, err := checker.FaultBall(a, k, opt.Workers, opt.MaxStates)
		if err != nil {
			return nil, err
		}
		if len(seeds) == 0 {
			return nil, fmt.Errorf("the legitimate set is empty; give explicit seeds with -from")
		}
		return statespace.BuildFrom(a, pol, seeds, opt)
	}
	cfgs, err := parseSeeds(from, a.Graph().N())
	if err != nil {
		return nil, err
	}
	return statespace.BuildFromConfigs(a, pol, cfgs, opt)
}

// parseSeeds parses "1,0,2;0,0,0" into configurations of n states.
func parseSeeds(s string, n int) ([]protocol.Configuration, error) {
	var out []protocol.Configuration
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(strings.TrimSpace(part), ",")
		if len(fields) != n {
			return nil, fmt.Errorf("seed %q has %d states, want %d", part, len(fields), n)
		}
		cfg := make(protocol.Configuration, n)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("seed %q: %w", part, err)
			}
			cfg[i] = v
		}
		out = append(out, cfg)
	}
	return out, nil
}

// printWitness prints the shortest convergence path from the configuration
// farthest from L (or reports the first configuration with none).
func printWitness(sp *checker.Space) {
	worst, worstLen := -1, 0
	for s := 0; s < sp.NumStates(); s++ {
		path := sp.WitnessPath(sp.Config(s))
		if path == nil {
			fmt.Printf("  no convergence path from %v\n", sp.Config(s))
			return
		}
		if len(path) > worstLen {
			worst, worstLen = s, len(path)
		}
	}
	if worst < 0 {
		return
	}
	fmt.Printf("  worst-case witness (%d steps):\n", worstLen-1)
	for _, cfg := range sp.WitnessPath(sp.Config(worst)) {
		fmt.Printf("    %v\n", cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stabcheck:", err)
	os.Exit(1)
}
