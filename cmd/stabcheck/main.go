// Command stabcheck classifies an algorithm instance in the paper's
// stabilization hierarchy by exhaustive state-space exploration and exact
// Markov analysis: strong closure, possible/certain/probability-1
// convergence, strongly fair diverging lassos, and the resulting class
// (self / probabilistic / weak / none).
//
// The configuration space is explored exactly once — in parallel, on
// -workers workers — and shared by every analysis the flags request. Two
// exploration modes exist:
//
//   - default: the full mixed-radix index range (every configuration);
//   - -reachable: a frontier BFS from a seed set (-from, or the
//     legitimate set when -from is omitted) discovers only the reachable
//     subspace, so the cost scales with the forward closure of the seeds
//     instead of the whole space. Properties then quantify over the
//     explored states.
//
// The -kfaults verdicts themselves always pay for the fault ball, not the
// space: the distance-≤k ball is enumerated directly (no transition
// exploration) and only its forward closure is frontier-explored; the
// verdicts are bit-identical to the full-space ones. Combining
// `-reachable -kfaults k` is ball-sized end to end: the single ball
// enumeration and single closure exploration feed both the classification
// report (which then quantifies over the ball's closure) and the per-k
// verdicts.
//
// With -cache DIR, explored spaces and subspaces are persisted to (and
// loaded from) an on-disk cache keyed by (algorithm, instance, policy[,
// seed set]); a repeated invocation skips exploration entirely and prints
// a bit-identical report.
//
// Examples:
//
//	stabcheck -alg tokenring -n 6 -policy central
//	stabcheck -alg leadertree -n 4 -topology chain -policy synchronous
//	stabcheck -alg leadertree -n 4 -transform -policy synchronous
//	stabcheck -alg dijkstra -n 4 -k 4 -policy distributed
//	stabcheck -alg tokenring -n 14 -reachable -kfaults 2   # ball-sized, end to end
//	stabcheck -alg tokenring -n 10 -reachable              # closure of L
//	stabcheck -alg tokenring -n 6 -reachable -from 1,0,2,1,0,3
//	stabcheck -alg tokenring -n 11 -cache ~/.weakstab-cache  # warm runs skip exploration
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"weakstab/internal/checker"
	"weakstab/internal/cli"
	"weakstab/internal/core"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
	"weakstab/internal/spacecache"
	"weakstab/internal/statespace"
)

func main() {
	var (
		alg       = flag.String("alg", "tokenring", "algorithm: "+strings.Join(cli.Algorithms(), ", "))
		n         = flag.Int("n", 5, "number of processes")
		topology  = flag.String("topology", "chain", "tree topology: chain, star, random, figure2")
		k         = flag.Int("k", 0, "dijkstra state count / token ring modulus override")
		transform = flag.Bool("transform", false, "apply the §4 coin-toss transformer")
		bias      = flag.Float64("bias", 0.5, "transformer coin bias")
		policy    = flag.String("policy", "central", "scheduler policy: central, distributed, synchronous")
		seed      = flag.Int64("seed", 1, "seed for random topologies")
		witness   = flag.Bool("witness", false, "print a worst-case convergence witness path")
		kfaults   = flag.Int("kfaults", -1, "also analyze convergence within k corrupted processes (k-stabilization lens; explores only the fault ball)")
		lasso     = flag.Bool("lasso", false, "print the strongly fair diverging lasso and its Gouda-fairness verdict")
		reachable = flag.Bool("reachable", false, "explore only the subspace reachable from the seed set (-from, default: the legitimate set) instead of the full index range")
		from      = flag.String("from", "", "seed configurations for -reachable: comma-separated process states, ';' between configurations (e.g. 1,0,2;0,0,0)")
		maxStates = flag.Int64("max-states", 0, "state space cap (0 = default)")
		workers   = flag.Int("workers", 0, "exploration worker-pool size (0 = all CPUs)")
		cacheDir  = flag.String("cache", "", "on-disk space cache directory: repeated runs load the explored space instead of rebuilding it")
	)
	flag.Parse()

	spec := cli.Spec{Algorithm: *alg, N: *n, Topology: *topology, K: *k,
		Transform: *transform, Bias: *bias, Seed: *seed}
	a, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	pol, err := cli.BuildPolicy(*policy)
	if err != nil {
		fatal(err)
	}
	cache, err := spacecache.Open(*cacheDir)
	if err != nil {
		fatal(err)
	}
	opt := statespace.Options{MaxStates: *maxStates, Workers: *workers}

	// Explore once. With `-reachable -kfaults k` (and no explicit -from)
	// the one ball closure below is shared end to end: it is the analyzed
	// subspace of the report AND the subspace the k-fault verdicts scan.
	var (
		ts          statespace.TransitionSystem
		ballSS      *statespace.SubSpace
		ballGlobals []int64
		ballDist    []int
	)
	switch {
	case *reachable && *from == "":
		k := 0
		if *kfaults > 0 {
			k = *kfaults
		}
		ballSS, ballGlobals, ballDist, err = exploreBall(cache, a, pol, k, opt)
		if err == nil && ballSS == nil {
			err = fmt.Errorf("the legitimate set is empty; give explicit seeds with -from")
		}
		ts = ballSS
	case *reachable:
		var cfgs []protocol.Configuration
		if cfgs, err = parseSeeds(*from, a.Graph().N()); err == nil {
			ts, _, err = cache.BuildSubSpaceFromConfigs(a, pol, cfgs, opt)
		}
	default:
		ts, _, err = cache.BuildSpace(a, pol, opt)
	}
	if err != nil {
		fatal(err)
	}
	rep, err := core.AnalyzeSpace(ts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if err := rep.CheckHierarchy(); err != nil {
		fatal(err)
	}
	if rep.FairLassoFound {
		fmt.Println("  note: a strongly fair diverging execution exists — not self-stabilizing even under the strongly fair scheduler")
	}
	sp := checker.FromSpace(ts)
	if *witness {
		printWitness(sp)
	}
	if *kfaults >= 0 {
		ss, globals, dist := ballSS, ballGlobals, ballDist
		if ss == nil {
			// Full-space or explicit-seed report: the ball pipeline still
			// runs exactly once, for the verdicts only.
			ss, globals, dist, err = exploreBall(cache, a, pol, *kfaults, opt)
			if err != nil {
				fatal(err)
			}
		}
		// A nil subspace (empty legitimate set) yields vacuous verdicts.
		verdicts := checker.BallVerdictsOver(ss, checker.BallLocalDistances(ss, globals, dist), *kfaults)
		for _, v := range verdicts {
			fmt.Printf("  k=%d faults: %d configurations, possible=%v certain=%v\n",
				v.K, v.Configs, v.Possible, v.Certain)
		}
		if ss != nil {
			fmt.Printf("  (ball closure: %d of %d configurations explored)\n",
				ss.NumStates(), ss.TotalConfigs())
		}
	}
	if *lasso {
		l := sp.FindStronglyFairLasso()
		if !l.Found {
			fmt.Println("  no strongly fair diverging lasso found")
		} else {
			fmt.Printf("  strongly fair diverging lasso: %d steps from %v; Gouda fair: %v\n",
				len(l.Records), l.Cycle[0], sp.GoudaFairLasso(l.Cycle))
		}
	}
}

// exploreBall enumerates the distance-≤k fault ball and explores its
// forward closure — through the cache, so a warm run loads the closure
// subspace instead of frontier-exploring it. The ball enumeration itself
// (a legitimacy scan plus mutation BFS, no transition exploration) always
// runs: it is what produces the seed set the cache key hashes. A nil
// subspace with nil error means the legitimate set is empty.
func exploreBall(cache *spacecache.Cache, a protocol.Algorithm, pol scheduler.Policy, k int, opt statespace.Options) (*statespace.SubSpace, []int64, []int, error) {
	return checker.BallClosureUsing(checker.BuilderFromCache(cache), a, pol, k, opt)
}

// parseSeeds parses "1,0,2;0,0,0" into configurations of n states.
func parseSeeds(s string, n int) ([]protocol.Configuration, error) {
	var out []protocol.Configuration
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(strings.TrimSpace(part), ",")
		if len(fields) != n {
			return nil, fmt.Errorf("seed %q has %d states, want %d", part, len(fields), n)
		}
		cfg := make(protocol.Configuration, n)
		for i, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("seed %q: %w", part, err)
			}
			cfg[i] = v
		}
		out = append(out, cfg)
	}
	return out, nil
}

// printWitness prints the shortest convergence path from the configuration
// farthest from L (or reports the first configuration with none). One
// backward BFS from L prices every state's distance; the worst witness is
// reconstructed from that single pass.
func printWitness(sp *checker.Space) {
	path, stuck := sp.WorstCaseWitness()
	if stuck != nil {
		fmt.Printf("  no convergence path from %v\n", stuck)
		return
	}
	if len(path) == 0 {
		return
	}
	fmt.Printf("  worst-case witness (%d steps):\n", len(path)-1)
	for _, cfg := range path {
		fmt.Printf("    %v\n", cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stabcheck:", err)
	os.Exit(1)
}
