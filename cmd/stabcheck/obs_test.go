package main

// Observability integration tests: instrumentation must never change the
// report (byte-identity), and the JSONL trace of a deterministic run is
// pinned golden after normalizing the one non-deterministic field class
// (timings). Regenerate with
//
//	go test ./cmd/stabcheck -run TestGoldenTrace -update

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// normTimes pins every timing field to 0 — t_ms (event clock), wall_ms
// and cpu_ms (phase spans) are the only non-deterministic values in a
// trace of a deterministic analysis.
var normTimes = regexp.MustCompile(`"(t_ms|wall_ms|cpu_ms)":[0-9eE.+-]+`)

func normalizeTrace(b []byte) string {
	return normTimes.ReplaceAllString(string(b), `"$1":0`)
}

// TestObsByteIdentity is the tentpole's core invariant: the report with
// -progress and -trace-out on is byte-identical to the plain one, for
// the full-space report, the ball pipeline and the incremental sweep.
func TestObsByteIdentity(t *testing.T) {
	for _, args := range [][]string{
		{"-alg", "tokenring", "-n", "6"},
		{"-alg", "tokenring", "-n", "6", "-reachable", "-kfaults", "1"},
		{"-alg", "tokenring", "-n", "6", "-kmax", "3"},
	} {
		var plain strings.Builder
		if err := run(args, &plain); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		trace := filepath.Join(t.TempDir(), "trace.jsonl")
		manifest := filepath.Join(t.TempDir(), "run.json")
		obsArgs := append(append([]string{}, args...),
			"-progress", "-trace-out", trace, "-manifest", manifest)
		var instrumented strings.Builder
		if err := run(obsArgs, &instrumented); err != nil {
			t.Fatalf("run(%v): %v", obsArgs, err)
		}
		if plain.String() != instrumented.String() {
			t.Errorf("report of stabcheck %s changes under observability:\n--- plain ---\n%s--- instrumented ---\n%s",
				strings.Join(args, " "), plain.String(), instrumented.String())
		}
		if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
			t.Errorf("%v: trace file missing or empty (err=%v)", args, err)
		}
	}
}

// TestGoldenTrace pins the JSONL event stream of the incremental sweep:
// frontier shells stitched serially and sweep radii sealed in k order
// make the whole stream deterministic once timings are normalized.
func TestGoldenTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{"-alg", "tokenring", "-n", "6", "-kmax", "3", "-trace-out", trace}
	if err := run(args, &strings.Builder{}); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeTrace(raw)
	path := filepath.Join("testdata", "trace_kmax3_tokenring6.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("normalized trace differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestManifest checks the run manifest of a sweep: replay identity
// (command, args, seed), the phase timeline, and the deterministic
// metric values of the tokenring-6 sweep.
func TestManifest(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "run.json")
	args := []string{"-alg", "tokenring", "-n", "6", "-kmax", "3", "-manifest", manifest}
	if err := run(args, &strings.Builder{}); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Command string                  `json:"command"`
		Args    []string                `json:"args"`
		Seed    int64                   `json:"seed"`
		SeedSet bool                    `json:"seed_set"`
		WallMS  float64                 `json:"wall_ms"`
		Phases  []struct{ Name string } `json:"phases"`
		Metrics map[string]int64        `json:"metrics"`
		Error   string                  `json:"error"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v\n%s", err, raw)
	}
	if m.Command != "stabcheck" || !m.SeedSet || m.Seed != 1 || m.Error != "" {
		t.Errorf("manifest identity = (%q, seed %d set=%v, error %q), want (stabcheck, 1, true, \"\")",
			m.Command, m.Seed, m.SeedSet, m.Error)
	}
	if len(m.Args) != len(args) {
		t.Errorf("manifest args = %v, want %v", m.Args, args)
	}
	if m.WallMS <= 0 {
		t.Errorf("manifest wall_ms = %v, want > 0", m.WallMS)
	}
	if len(m.Phases) == 0 || m.Phases[0].Name != "sweep" {
		t.Errorf("manifest phases = %+v, want a leading sweep phase", m.Phases)
	}
	// The sweep's exploration totals are pinned by the library tests —
	// the walk stops at k=1, the smallest radius breaking certain
	// convergence — and the registry must agree with them exactly.
	for name, want := range map[string]int64{
		"sweep.radii":     2,
		"frontier.states": 704,
	} {
		if got := m.Metrics[name]; got != want {
			t.Errorf("manifest metric %s = %d, want %d", name, got, want)
		}
	}
}
