package main

// Golden-output tests for the CLI glue: flag combinations drive run()
// against an in-memory writer and the rendered reports are pinned
// byte-for-byte (testdata/*.golden). Every analysis underneath is
// deterministic — worker counts, caching and incremental sweeps are all
// pinned bit-identical by the library tests — so the CLI output is too.
// Regenerate with
//
//	go test ./cmd/stabcheck -run TestGolden -update

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the observed output")

func runGolden(t *testing.T, name string, args ...string) {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if sb.String() != string(want) {
		t.Errorf("output of stabcheck %s differs from %s:\n--- got ---\n%s--- want ---\n%s",
			strings.Join(args, " "), path, sb.String(), want)
	}
}

func TestGoldenReport(t *testing.T) {
	runGolden(t, "report_tokenring6", "-alg", "tokenring", "-n", "6")
}

func TestGoldenKFaults(t *testing.T) {
	runGolden(t, "kfaults1_tokenring6", "-alg", "tokenring", "-n", "6", "-kfaults", "1")
}

func TestGoldenKFaultsZero(t *testing.T) {
	// Boundary: -kfaults 0 quantifies over exactly the legitimate set —
	// trivially converged verdicts over |L| = n·m configurations.
	runGolden(t, "kfaults0_tokenring6", "-alg", "tokenring", "-n", "6", "-kfaults", "0")
}

func TestGoldenReachableKFaults(t *testing.T) {
	runGolden(t, "reachable_kfaults1_tokenring6", "-alg", "tokenring", "-n", "6", "-reachable", "-kfaults", "1")
}

func TestGoldenKMax(t *testing.T) {
	runGolden(t, "kmax3_tokenring6", "-alg", "tokenring", "-n", "6", "-kmax", "3")
}

func TestGoldenKMaxUnbroken(t *testing.T) {
	runGolden(t, "kmax2_dijkstra4", "-alg", "dijkstra", "-n", "4", "-k", "4", "-kmax", "2")
}

func TestGoldenMC(t *testing.T) {
	runGolden(t, "mc_tokenring6", "-alg", "tokenring", "-n", "6", "-mc", "-trials", "2000")
}

func TestGoldenMCEarlyStop(t *testing.T) {
	runGolden(t, "mc_ci_herman7", "-alg", "herman", "-n", "7", "-policy", "synchronous", "-mc", "-ci", "0.5")
}

// TestGoldenMCWorkerInvariance reruns the -mc golden with adversarial
// worker counts: the estimate must stay byte-identical — the CLI face of
// the sampler's determinism contract.
func TestGoldenMCWorkerInvariance(t *testing.T) {
	for _, w := range []string{"1", "7"} {
		runGolden(t, "mc_tokenring6", "-alg", "tokenring", "-n", "6", "-mc", "-trials", "2000", "-workers", w)
	}
}

// The -json goldens pin the shared service result schema: these are the
// exact bytes stabserve's GET /jobs/{id}/result serves for the same
// request (the CI smoke job diffs the two surfaces).
func TestGoldenJSONReport(t *testing.T) {
	runGolden(t, "json_report_tokenring6", "-alg", "tokenring", "-n", "6", "-json")
}

func TestGoldenJSONKFaults(t *testing.T) {
	runGolden(t, "json_kfaults1_tokenring6", "-alg", "tokenring", "-n", "6", "-kfaults", "1", "-json")
}

func TestGoldenJSONKMax(t *testing.T) {
	runGolden(t, "json_kmax3_tokenring6", "-alg", "tokenring", "-n", "6", "-kmax", "3", "-json")
}

func TestGoldenJSONMC(t *testing.T) {
	runGolden(t, "json_mc_tokenring6", "-alg", "tokenring", "-n", "6", "-mc", "-trials", "2000", "-json")
}

func TestGoldenCacheWarmRuns(t *testing.T) {
	// Cold and warm runs through one cache directory must render
	// byte-identical output, for the report, the ball pipeline and the
	// sweep alike.
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"report_tokenring6", []string{"-alg", "tokenring", "-n", "6", "-cache", dir}},
		{"reachable_kfaults1_tokenring6", []string{"-alg", "tokenring", "-n", "6", "-reachable", "-kfaults", "1", "-cache", dir}},
		{"kmax3_tokenring6", []string{"-alg", "tokenring", "-n", "6", "-kmax", "3", "-cache", dir}},
		{"mc_tokenring6", []string{"-alg", "tokenring", "-n", "6", "-mc", "-trials", "2000", "-cache", dir}},
	} {
		runGolden(t, tc.name, tc.args...) // cold populates the cache
		runGolden(t, tc.name, tc.args...) // warm must render identically
	}
}

func TestFlagConflicts(t *testing.T) {
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-kmax", "2", "-kfaults", "1"}, "not both"},
		{[]string{"-kmax", "2", "-reachable"}, "drop -reachable"},
		{[]string{"-kmax", "2", "-from", "0,0,0,0,0"}, "drop -from"},
		{[]string{"-kmax", "2", "-witness"}, "drop -witness"},
		{[]string{"-kmax", "2", "-lasso"}, "drop -witness"},
		{[]string{"-alg", "nosuch"}, "unknown algorithm"},
		{[]string{"-mc", "-kfaults", "1"}, "drop -kfaults/-kmax"},
		{[]string{"-mc", "-kmax", "2"}, "drop -kfaults/-kmax"},
		{[]string{"-mc", "-witness"}, "drop -witness/-lasso"},
		{[]string{"-mc", "-lasso"}, "drop -witness/-lasso"},
		{[]string{"-trials", "5000"}, "add -mc"},
		{[]string{"-ci", "0.5"}, "add -mc"},
		{[]string{"-mc", "-trials", "-3"}, "trials must be >= 0"},
	} {
		err := run(tc.args, &strings.Builder{})
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("run(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
		}
	}
	// -h prints the usage (to the FlagSet's output) and succeeds; an
	// unknown flag is reported once by the FlagSet and surfaces only as
	// the already-reported sentinel.
	if err := run([]string{"-h"}, &strings.Builder{}); err != nil {
		t.Errorf("run(-h) = %v, want nil (help is not a failure)", err)
	}
	if err := run([]string{"-bogus"}, &strings.Builder{}); !errors.Is(err, errParse) {
		t.Errorf("run(-bogus) = %v, want the errParse sentinel", err)
	}
}
