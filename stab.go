// Package weakstab is a library for building, simulating and formally
// classifying stabilizing distributed algorithms in the locally shared
// memory model, reproducing "Weak vs. Self vs. Probabilistic Stabilization"
// (Devismes, Tixeuil, Yamashita; ICDCS 2008 / INRIA RR-6366).
//
// The package is a facade over the internal engine:
//
//   - topologies: rings, chains, stars, random and enumerated trees with
//     anonymous local neighbor indexing (NewRing, NewChain, NewRandomTree…);
//   - the paper's algorithms: Algorithm 1 token circulation (NewTokenRing),
//     Algorithm 2 tree leader election (NewLeaderElection), Algorithm 3
//     (NewSyncPair), the §3.2 center-based election (NewCenterElection),
//     plus the Dijkstra/Herman baselines;
//   - the §4 transformer turning any deterministic weak-stabilizing
//     algorithm into a probabilistic self-stabilizing one (Transform);
//   - schedulers and scheduler policies (Central/Distributed/Synchronous);
//   - exact classification in the stabilization hierarchy (Classify) and
//     Monte-Carlo simulation (Simulate, SimulateTrials).
//
// Quick start:
//
//	alg, _ := weakstab.NewTokenRing(8)
//	report, _ := weakstab.Classify(alg, weakstab.DistributedPolicy())
//	fmt.Print(report) // weak-stabilizing, probabilistically self-stabilizing…
//
//	trans := weakstab.Transform(alg)
//	res := weakstab.Simulate(trans, weakstab.DistributedScheduler(),
//		weakstab.RandomConfiguration(trans, rng), rng, 0)
package weakstab

import (
	"math/rand"

	"weakstab/internal/algorithms/centers"
	"weakstab/internal/algorithms/coloring"
	"weakstab/internal/algorithms/dijkstra"
	"weakstab/internal/algorithms/herman"
	"weakstab/internal/algorithms/leadertree"
	"weakstab/internal/algorithms/syncpair"
	"weakstab/internal/algorithms/tokenring"
	"weakstab/internal/core"
	"weakstab/internal/graph"
	"weakstab/internal/protocol"
	"weakstab/internal/scheduler"
	"weakstab/internal/sim"
	"weakstab/internal/stats"
	"weakstab/internal/transformer"
)

// Core model types, re-exported.
type (
	// Graph is an anonymous communication graph with local neighbor
	// indexing.
	Graph = graph.Graph
	// Configuration assigns one local state to every process.
	Configuration = protocol.Configuration
	// Algorithm is a distributed algorithm in the guarded-action model.
	Algorithm = protocol.Algorithm
	// Deterministic marks algorithms whose actions have unique outcomes;
	// only these can be transformed.
	Deterministic = protocol.Deterministic
	// Outcome is a probabilistic action result.
	Outcome = protocol.Outcome
	// Scheduler selects the activation subset of each step online.
	Scheduler = scheduler.Scheduler
	// Policy enumerates the activation subsets a scheduler class allows.
	Policy = scheduler.Policy
	// Report is the exact classification of an instance (see Classify).
	Report = core.Report
	// Class is a stabilization class (self, probabilistic, weak, none).
	Class = core.Class
	// SimResult reports one simulation run.
	SimResult = sim.Result
	// Summary holds descriptive statistics of a sample.
	Summary = stats.Summary
)

// Stabilization classes.
const (
	ClassSelf          = core.ClassSelf
	ClassProbabilistic = core.ClassProbabilistic
	ClassWeak          = core.ClassWeak
	ClassNone          = core.ClassNone
)

// NewRing returns the anonymous ring on n >= 3 processes.
func NewRing(n int) (*Graph, error) { return graph.Ring(n) }

// NewChain returns the path graph on n >= 2 processes.
func NewChain(n int) (*Graph, error) { return graph.Chain(n) }

// NewStar returns the star on n >= 2 processes with hub 0.
func NewStar(n int) (*Graph, error) { return graph.Star(n) }

// NewRandomTree returns a uniformly random labeled tree on n >= 2 nodes.
func NewRandomTree(n int, rng *rand.Rand) (*Graph, error) { return graph.RandomTree(n, rng) }

// NewGraph builds a graph from an explicit undirected edge list.
func NewGraph(n int, edges [][2]int) (*Graph, error) { return graph.FromEdges(n, edges) }

// AllLabeledTrees enumerates every labeled tree on n nodes via Prüfer
// sequences, calling fn until it returns false.
func AllLabeledTrees(n int, fn func(*Graph) bool) error { return graph.AllLabeledTrees(n, fn) }

// NewTokenRing returns Algorithm 1 (Beauquier et al. mN-counter token
// circulation) on an anonymous unidirectional ring of n >= 3 processes.
func NewTokenRing(n int) (*tokenring.Algorithm, error) { return tokenring.New(n) }

// NewLeaderElection returns Algorithm 2 (Par-pointer leader election) on
// the anonymous tree g.
func NewLeaderElection(g *Graph) (*leadertree.Algorithm, error) { return leadertree.New(g) }

// NewCenterElection returns the §3.2 log N-bit leader election (center
// finding plus a one-bit tie-breaker) on the anonymous tree g.
func NewCenterElection(g *Graph) (*centers.Elector, error) { return centers.NewElector(g) }

// NewCenterFinder returns the self-stabilizing tree-center computation
// underlying NewCenterElection.
func NewCenterFinder(g *Graph) (*centers.Finder, error) { return centers.NewFinder(g) }

// NewSyncPair returns Algorithm 3, the two-process protocol whose only
// converging step is synchronous.
func NewSyncPair() (*syncpair.Algorithm, error) { return syncpair.New() }

// NewColoring returns greedy distributed vertex coloring on an arbitrary
// connected graph — the conflict-manager example of the paper's citation
// [14], self-stabilizing under the central scheduler but only
// weak-stabilizing under the distributed one.
func NewColoring(g *Graph) (*coloring.Algorithm, error) { return coloring.New(g) }

// NewDijkstra returns Dijkstra's K-state token ring (rooted; the
// deterministic self-stabilizing baseline).
func NewDijkstra(n, k int) (*dijkstra.Algorithm, error) { return dijkstra.New(n, k) }

// NewHerman returns Herman's synchronous probabilistic token ring (odd n).
func NewHerman(n int) (*herman.Algorithm, error) { return herman.New(n) }

// Transform applies the paper's §4 construction with a fair coin: every
// activated process executes its action only if it wins a toss. The result
// is probabilistically self-stabilizing under synchronous and distributed
// randomized schedulers whenever the input is weak-stabilizing
// (Theorems 8–9).
func Transform(inner Deterministic) Algorithm { return transformer.New(inner) }

// TransformBiased is Transform with coin bias p in (0,1).
func TransformBiased(inner Deterministic, p float64) (Algorithm, error) {
	return transformer.NewBiased(inner, p)
}

// CentralScheduler returns the central randomized scheduler (one uniform
// enabled process per step).
func CentralScheduler() Scheduler { return scheduler.NewCentralRandomized() }

// DistributedScheduler returns the distributed randomized scheduler
// (uniform non-empty subset per step, Definition 6).
func DistributedScheduler() Scheduler { return scheduler.NewDistributedRandomized() }

// SynchronousScheduler returns the synchronous scheduler (all enabled
// processes every step).
func SynchronousScheduler() Scheduler { return scheduler.NewSynchronous() }

// CentralPolicy returns the central scheduler's activation-subset policy.
func CentralPolicy() Policy { return scheduler.CentralPolicy{} }

// DistributedPolicy returns the distributed scheduler's policy.
func DistributedPolicy() Policy { return scheduler.DistributedPolicy{} }

// SynchronousPolicy returns the synchronous scheduler's policy.
func SynchronousPolicy() Policy { return scheduler.SynchronousPolicy{} }

// Classify decides exactly where the instance sits in the stabilization
// hierarchy under the given scheduler policy: strong closure, possible /
// certain / probability-1 convergence, strongly fair diverging executions,
// and exact expected stabilization times. It enumerates the full
// configuration space, so it is meant for bounded instances (thousands to
// millions of configurations).
func Classify(a Algorithm, pol Policy) (*Report, error) { return core.Analyze(a, pol, 0) }

// RandomConfiguration samples a configuration uniformly from a's space.
func RandomConfiguration(a Algorithm, rng *rand.Rand) Configuration {
	return protocol.RandomConfiguration(a, rng)
}

// Simulate runs a under the scheduler from init until a legitimate
// configuration or maxSteps (0 means 1,000,000).
func Simulate(a Algorithm, s Scheduler, init Configuration, rng *rand.Rand, maxSteps int) SimResult {
	return sim.Run(a, s, init, rng, sim.Options{MaxSteps: maxSteps})
}

// SimulateTrials summarizes repeated runs from random initial
// configurations, returning step statistics over converged runs and the
// number of runs that exhausted the budget. Trial i derives its own RNG
// from (seed, i), so any single trial is replayable in isolation.
func SimulateTrials(a Algorithm, s Scheduler, trials int, seed int64, maxSteps int) (Summary, int) {
	return sim.Trials(a, s, trials, seed, sim.Options{MaxSteps: maxSteps})
}

// InjectFaults corrupts k distinct processes' states uniformly at random —
// the paper's transient-fault model.
func InjectFaults(a Algorithm, cfg Configuration, k int, rng *rand.Rand) Configuration {
	return sim.InjectFaults(a, cfg, k, rng)
}

// EnabledProcesses returns the processes with an enabled action in cfg.
func EnabledProcesses(a Algorithm, cfg Configuration) []int {
	return protocol.EnabledProcesses(a, cfg)
}

// Step executes one atomic scheduler step (the enabled members of subset
// fire against the pre-step configuration).
func Step(a Algorithm, cfg Configuration, subset []int, rng *rand.Rand) Configuration {
	return protocol.Step(a, cfg, subset, rng)
}

// IsTerminal reports whether no process is enabled in cfg.
func IsTerminal(a Algorithm, cfg Configuration) bool { return protocol.IsTerminal(a, cfg) }
