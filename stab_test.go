package weakstab_test

import (
	"math/rand"
	"testing"

	"weakstab"
)

func TestFacadeTopologies(t *testing.T) {
	if _, err := weakstab.NewRing(6); err != nil {
		t.Fatal(err)
	}
	if _, err := weakstab.NewChain(4); err != nil {
		t.Fatal(err)
	}
	if _, err := weakstab.NewStar(5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	g, err := weakstab.NewRandomTree(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() {
		t.Fatal("random tree is not a tree")
	}
	count := 0
	if err := weakstab.AllLabeledTrees(4, func(*weakstab.Graph) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 16 {
		t.Fatalf("enumerated %d trees, want 16", count)
	}
}

func TestFacadeAlgorithmsAndClassify(t *testing.T) {
	alg, err := weakstab.NewTokenRing(5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := weakstab.Classify(alg, weakstab.CentralPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strongest() != weakstab.ClassProbabilistic {
		t.Fatalf("token ring class = %v", rep.Strongest())
	}
	dk, err := weakstab.NewDijkstra(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = weakstab.Classify(dk, weakstab.CentralPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Strongest() != weakstab.ClassSelf {
		t.Fatalf("dijkstra class = %v", rep.Strongest())
	}
}

func TestFacadeTransformAndSimulate(t *testing.T) {
	g, err := weakstab.NewChain(4)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := weakstab.NewLeaderElection(g)
	if err != nil {
		t.Fatal(err)
	}
	alg := weakstab.Transform(inner)
	rng := rand.New(rand.NewSource(3))
	res := weakstab.Simulate(alg, weakstab.SynchronousScheduler(),
		weakstab.RandomConfiguration(alg, rng), rng, 0)
	if !res.Converged {
		t.Fatal("transformed election did not converge synchronously")
	}
	if _, err := weakstab.TransformBiased(inner, 1.5); err == nil {
		t.Fatal("invalid bias accepted")
	}
	summary, failures := weakstab.SimulateTrials(alg, weakstab.DistributedScheduler(), 50, 3, 0)
	if failures != 0 || summary.Count != 50 {
		t.Fatalf("trials: %d failures, %d converged", failures, summary.Count)
	}
}

func TestFacadeStepAndFaults(t *testing.T) {
	alg, err := weakstab.NewTokenRing(6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := alg.LegitimateWithTokenAt(2)
	if weakstab.IsTerminal(alg, cfg) {
		t.Fatal("legitimate token ring configuration cannot be terminal")
	}
	enabled := weakstab.EnabledProcesses(alg, cfg)
	if len(enabled) != 1 || enabled[0] != 2 {
		t.Fatalf("enabled = %v", enabled)
	}
	next := weakstab.Step(alg, cfg, enabled, nil)
	if holders := alg.TokenHolders(next); holders[0] != 3 {
		t.Fatalf("token at %v, want [3]", holders)
	}
	rng := rand.New(rand.NewSource(4))
	faulted := weakstab.InjectFaults(alg, cfg, 3, rng)
	if len(faulted) != 6 {
		t.Fatal("fault injection changed configuration length")
	}
	herman, err := weakstab.NewHerman(5)
	if err != nil {
		t.Fatal(err)
	}
	if herman.Graph().N() != 5 {
		t.Fatal("herman graph wrong")
	}
	if _, err := weakstab.NewCenterElection(herman.Graph()); err == nil {
		t.Fatal("center election on a ring accepted")
	}
	chain, err := weakstab.NewChain(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := weakstab.NewCenterFinder(chain); err != nil {
		t.Fatal(err)
	}
	if _, err := weakstab.NewSyncPair(); err != nil {
		t.Fatal(err)
	}
	if _, err := weakstab.NewGraph(3, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
}
